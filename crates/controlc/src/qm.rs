//! Two-level logic minimization: Quine–McCluskey with don't-cares and a
//! greedy prime-implicant cover.
//!
//! The control compiler's "logic-level optimizations" of the paper's §3
//! (Figure 1) for the sequencing logic. Input sizes here are
//! controller-scale (state bits + a few status bits), where exact prime
//! generation is cheap.

use std::collections::BTreeSet;

/// A product term over `n` inputs: `value` gives the required bit values
/// on positions where `mask` is 0; `mask` bits of 1 are don't-care
/// positions eliminated by combining.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cube {
    /// Fixed input values (only meaningful where `mask` is 0).
    pub value: u64,
    /// 1-bits mark eliminated (don't-care) positions.
    pub mask: u64,
}

impl Cube {
    /// True when the cube covers the minterm.
    pub fn covers(&self, minterm: u64) -> bool {
        (minterm | self.mask) == (self.value | self.mask)
    }

    /// The literals of the cube: `(input index, positive)` pairs.
    pub fn literals(&self, inputs: usize) -> Vec<(usize, bool)> {
        (0..inputs)
            .filter(|i| self.mask & (1 << i) == 0)
            .map(|i| (i, self.value & (1 << i) != 0))
            .collect()
    }
}

/// Minimizes a single-output function given its on-set and don't-care
/// minterms over `inputs` variables, returning a (near-minimal) cover of
/// the on-set by prime implicants.
///
/// # Panics
///
/// Panics if `inputs > 24` (controller logic never gets near this).
pub fn minimize(inputs: usize, on_set: &[u64], dc_set: &[u64]) -> Vec<Cube> {
    assert!(inputs <= 24, "too many inputs for exact minimization");
    if on_set.is_empty() {
        return Vec::new();
    }
    let full: u64 = if inputs == 64 {
        u64::MAX
    } else {
        (1 << inputs) - 1
    };
    let on: BTreeSet<u64> = on_set.iter().map(|m| m & full).collect();
    let dc: BTreeSet<u64> = dc_set.iter().map(|m| m & full).collect();

    // Level 0: all covered minterms as cubes.
    let mut current: BTreeSet<Cube> = on
        .iter()
        .chain(dc.iter())
        .map(|&m| Cube { value: m, mask: 0 })
        .collect();
    let mut primes: BTreeSet<Cube> = BTreeSet::new();
    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().copied().collect();
        let mut combined_away: BTreeSet<Cube> = BTreeSet::new();
        let mut next: BTreeSet<Cube> = BTreeSet::new();
        for (i, a) in cubes.iter().enumerate() {
            for b in cubes.iter().skip(i + 1) {
                if a.mask != b.mask {
                    continue;
                }
                let diff = (a.value ^ b.value) & !a.mask;
                if diff.count_ones() == 1 {
                    next.insert(Cube {
                        value: a.value & !diff,
                        mask: a.mask | diff,
                    });
                    combined_away.insert(*a);
                    combined_away.insert(*b);
                }
            }
        }
        for c in cubes {
            if !combined_away.contains(&c) {
                primes.insert(c);
            }
        }
        current = next;
    }

    // Cover the on-set: essential primes first, then greedy by coverage.
    let on_vec: Vec<u64> = on.iter().copied().collect();
    let prime_vec: Vec<Cube> = primes.into_iter().collect();
    let mut chosen: Vec<Cube> = Vec::new();
    let mut uncovered: BTreeSet<u64> = on.clone();
    // Essential primes.
    for &m in &on_vec {
        let covering: Vec<&Cube> = prime_vec.iter().filter(|c| c.covers(m)).collect();
        if covering.len() == 1 && !chosen.contains(covering[0]) {
            chosen.push(*covering[0]);
        }
    }
    for c in &chosen {
        uncovered.retain(|m| !c.covers(*m));
    }
    while !uncovered.is_empty() {
        let best = prime_vec
            .iter()
            .filter(|c| !chosen.contains(c))
            .max_by_key(|c| {
                (
                    uncovered.iter().filter(|&&m| c.covers(m)).count(),
                    c.mask.count_ones(),
                )
            })
            .copied()
            .expect("primes cover the on-set");
        uncovered.retain(|m| !best.covers(*m));
        chosen.push(best);
    }
    chosen.sort();
    chosen
}

/// Evaluates a cover on one input vector (for verification).
pub fn eval_cover(cover: &[Cube], input: u64) -> bool {
    cover.iter().any(|c| c.covers(input))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check: the cover is exact on the care set.
    fn check_exact(inputs: usize, on: &[u64], dc: &[u64]) {
        let cover = minimize(inputs, on, dc);
        for m in 0..(1u64 << inputs) {
            let want = on.contains(&m);
            let is_dc = dc.contains(&m);
            let got = eval_cover(&cover, m);
            if !is_dc {
                assert_eq!(got, want, "minterm {m:b} wrong in cover {cover:?}");
            }
        }
    }

    #[test]
    fn xor_needs_two_cubes() {
        let cover = minimize(2, &[0b01, 0b10], &[]);
        assert_eq!(cover.len(), 2);
        check_exact(2, &[0b01, 0b10], &[]);
    }

    #[test]
    fn full_function_is_single_cube() {
        let cover = minimize(2, &[0, 1, 2, 3], &[]);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].mask, 0b11);
    }

    #[test]
    fn classic_4var_example() {
        // f = Σ(4,8,10,11,12,15) + d(9,14) — the textbook QM example;
        // minimal cover has 3-4 cubes.
        let on = [4, 8, 10, 11, 12, 15];
        let dc = [9, 14];
        let cover = minimize(4, &on, &dc);
        assert!(cover.len() <= 4, "{cover:?}");
        check_exact(4, &on, &dc);
    }

    #[test]
    fn dont_cares_shrink_the_cover() {
        // With don't-cares everywhere except two points, one cube wins.
        let on = [0b000];
        let dc = [0b001, 0b010, 0b011, 0b100, 0b101, 0b110];
        let cover = minimize(3, &on, &dc);
        assert_eq!(cover.len(), 1);
        check_exact(3, &on, &dc);
    }

    #[test]
    fn empty_on_set() {
        assert!(minimize(4, &[], &[1, 2]).is_empty());
    }

    #[test]
    fn literals_reported_lsb_first() {
        let cover = minimize(3, &[0b101], &[]);
        assert_eq!(cover.len(), 1);
        let lits = cover[0].literals(3);
        assert_eq!(lits, vec![(0, true), (1, false), (2, true)]);
    }

    #[test]
    fn random_functions_are_exact() {
        // Deterministic pseudo-random sweep over 4-variable functions.
        let mut x = 0x1234_5678u64;
        for _ in 0..50 {
            let mut on = Vec::new();
            let mut dc = Vec::new();
            for m in 0..16u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                match x % 4 {
                    0 => on.push(m),
                    1 => dc.push(m),
                    _ => {}
                }
            }
            check_exact(4, &on, &dc);
        }
    }
}
