//! Linking a compiled controller with its datapath into one closed
//! netlist.

use crate::fsm::{ControlError, Controller};
use genus::netlist::Netlist;
use hls::compile::Design;

/// Merges the datapath of `design` with `controller` into a single
/// netlist: the controller's control outputs drive the nets that were
/// exposed as `ctl_*` inputs, and the datapath's `st_*` status outputs
/// feed the controller. The result's external interface is the entity's
/// own ports plus `clk`.
///
/// # Errors
///
/// [`ControlError`] when names collide or the merged netlist fails
/// validation.
pub fn link(design: &Design, controller: &Controller) -> Result<Netlist, ControlError> {
    let mut merged = design.netlist.clone();
    // The controller now drives the control nets and reads the status
    // nets internally.
    for (name, _) in &design.controls {
        merged.remove_port(&format!("ctl_{name}"));
    }
    for s in &design.statuses {
        merged.remove_port(&format!("st_{s}"));
    }
    // Import controller nets (statuses, controls and clk already exist).
    for net in controller.netlist.nets().to_vec() {
        if merged.net(&net.name).is_some() {
            continue;
        }
        match &net.constant {
            Some(v) => merged.add_const_net(&net.name, v.clone())?,
            None => merged.add_net(&net.name, net.width)?,
        }
    }
    for inst in controller.netlist.instances() {
        merged.add_instance(inst.clone())?;
    }
    merged.validate()?;
    Ok(merged)
}

/// Convenience: compile the controller for a design and link it.
///
/// # Errors
///
/// Propagates controller-synthesis and linking failures.
pub fn close_design(design: &Design) -> Result<Netlist, ControlError> {
    let controller = crate::fsm::compile_controller(&design.state_table)?;
    link(design, &controller)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus::behavior::Env;
    use genus::component::PortDir;
    use hls::compile::{compile, Constraints};
    use hls::lang::parse_entity;
    use rtl_base::bits::Bits;

    const GCD: &str = "
entity gcd(a_in: in 8, b_in: in 8, r: out 8, done: out 1) {
    var a: 8;
    var b: 8;
    a = a_in;
    b = b_in;
    while (a != b) {
        if (a > b) { a = a - b; } else { b = b - a; }
    }
    r = a;
    done = 1;
}";

    fn run_gcd(a: u64, b: u64) -> u64 {
        let entity = parse_entity(GCD).unwrap();
        let design = compile(&entity, &Constraints::default()).unwrap();
        let closed = close_design(&design).unwrap();
        let flat = rtlsim::FlatDesign::from_netlist(&closed).unwrap();
        let mut sim = rtlsim::Simulator::new(&flat).unwrap();
        let inputs = Env::from([
            ("clk".to_string(), Bits::zero(1)),
            ("a_in".to_string(), Bits::from_u64(8, a)),
            ("b_in".to_string(), Bits::from_u64(8, b)),
        ]);
        for _ in 0..2000 {
            let out = sim.step(&inputs).unwrap();
            if out["done"].to_u64() == Some(1) {
                return out["r"].to_u64().unwrap();
            }
        }
        panic!("GCD did not terminate");
    }

    #[test]
    fn synthesized_gcd_hardware_computes_gcd() {
        assert_eq!(run_gcd(48, 36), 12);
        assert_eq!(run_gcd(7, 13), 1);
        assert_eq!(run_gcd(36, 36), 36);
        assert_eq!(run_gcd(250, 100), 50);
    }

    #[test]
    fn closed_netlist_has_only_entity_ports() {
        let entity = parse_entity(GCD).unwrap();
        let design = compile(&entity, &Constraints::default()).unwrap();
        let closed = close_design(&design).unwrap();
        let inputs: Vec<&str> = closed
            .ports()
            .iter()
            .filter(|p| p.dir == PortDir::In)
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(inputs, vec!["clk", "a_in", "b_in"]);
    }
}
