//! The control compiler: state sequencing tables to minimized,
//! technology-mappable sequencing logic.
//!
//! In the paper's architecture (Figure 1) the state sequencing table from
//! high-level synthesis "is accepted by a control compiler that extracts
//! the sequencing logic and applies logic-level optimizations and
//! technology mapping techniques". This crate implements that box:
//!
//! * [`qm`] — exact two-level minimization (Quine–McCluskey with
//!   don't-cares and a greedy cover);
//! * [`fsm`] — binary state encoding, next-state/output function
//!   extraction, and construction of the controller as a GENUS gate
//!   netlist (which DTAS can then map onto library cells like any other
//!   netlist);
//! * [`mod@link`] — closing the loop: the controller drives the datapath's
//!   control nets, producing one self-contained netlist.
//!
//! # Examples
//!
//! Build, close and simulate a complete design:
//!
//! ```
//! use controlc::link::close_design;
//! use hls::compile::{compile, Constraints};
//! use hls::lang::parse_entity;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let entity = parse_entity(
//!     "entity inc(x: in 8, y: out 8) { y = x + 1; }",
//! )?;
//! let design = compile(&entity, &Constraints::default())?;
//! let closed = close_design(&design)?;
//! assert!(closed.validate().is_ok());
//! # Ok(())
//! # }
//! ```

pub mod fsm;
pub mod link;
pub mod qm;

pub use fsm::{
    compile_controller, compile_controller_with, ControlError, Controller, ControllerStats,
    Encoding,
};
pub use link::{close_design, link};
pub use qm::{minimize, Cube};
