//! FSM synthesis: state sequencing table → minimized, gate-level
//! sequencing logic as a GENUS netlist.
//!
//! This is the paper's *control compiler*: "the state sequencing table is
//! accepted by a control compiler that extracts the sequencing logic and
//! applies logic-level optimizations and technology mapping techniques"
//! (§3). States are binary encoded; next-state and control-output
//! functions are minimized with Quine–McCluskey and built from inverters,
//! AND and OR gates plus one D flip-flop per state bit.

use crate::qm::{minimize, Cube};
use genus::build::select_width;
use genus::component::Instance;
use genus::kind::GateOp;
use genus::netlist::{Netlist, NetlistError};
use genus::stdlib::GenusLibrary;
use hls::statetable::{StateTable, Transition};
use rtl_base::bits::Bits;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Controller synthesis failure.
#[derive(Clone, Debug, PartialEq)]
pub struct ControlError(pub String);

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "control compiler: {}", self.0)
    }
}

impl std::error::Error for ControlError {}

impl From<NetlistError> for ControlError {
    fn from(e: NetlistError) -> Self {
        ControlError(e.to_string())
    }
}

/// State-encoding style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Encoding {
    /// Dense binary codes (`ceil(log2(n))` flip-flops).
    #[default]
    Binary,
    /// One flip-flop per state. The reset state's bit is stored inverted
    /// so the all-zero register reset is a valid code.
    OneHot,
}

/// Synthesis statistics for reporting.
#[derive(Clone, Debug, Default)]
pub struct ControllerStats {
    /// Number of states.
    pub states: usize,
    /// State register width.
    pub state_bits: usize,
    /// Status inputs read.
    pub status_bits: usize,
    /// Product terms after minimization (all outputs).
    pub cubes: usize,
    /// Literal count after minimization.
    pub literals: usize,
}

/// A compiled controller: gate-level netlist plus statistics.
#[derive(Clone, Debug)]
pub struct Controller {
    /// Standalone netlist: inputs are `clk` plus the status nets; outputs
    /// are the control nets (named exactly as the state table declares
    /// them, so linking is name-based).
    pub netlist: Netlist,
    /// Statistics.
    pub stats: ControllerStats,
}

struct Builder {
    netlist: Netlist,
    lib: GenusLibrary,
    counter: usize,
    consts: BTreeMap<(usize, u64), String>,
    inverters: BTreeMap<String, String>,
}

impl Builder {
    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("fsm_{prefix}{}", self.counter)
    }

    fn const_net(&mut self, width: usize, v: u64) -> Result<String, ControlError> {
        if let Some(n) = self.consts.get(&(width, v)) {
            return Ok(n.clone());
        }
        let name = format!("fsm_const_w{width}_{v}");
        self.netlist
            .add_const_net(&name, Bits::from_u64(width, v))?;
        self.consts.insert((width, v), name.clone());
        Ok(name)
    }

    /// The complement of a 1-bit net (inverters are shared).
    fn inverted(&mut self, net: &str) -> Result<String, ControlError> {
        if let Some(n) = self.inverters.get(net) {
            return Ok(n.clone());
        }
        let out = format!("{net}_n");
        let name = self.fresh("inv");
        let comp = self
            .lib
            .gate(GateOp::Not, 1, 1)
            .map_err(|e| ControlError(e.to_string()))?;
        self.netlist.add_net(&out, 1)?;
        self.netlist.add_instance(
            Instance::new(&name, Arc::new(comp))
                .with_connection("I0", net)
                .with_connection("O", &out),
        )?;
        self.inverters.insert(net.to_string(), out.clone());
        Ok(out)
    }

    /// An n-ary gate over nets; fan-in 1 returns the net unchanged (for
    /// AND/OR).
    fn gate(&mut self, op: GateOp, nets: &[String]) -> Result<String, ControlError> {
        match nets.len() {
            0 => Err(ControlError("empty gate".to_string())),
            1 => Ok(nets[0].clone()),
            n => {
                let name = self.fresh(match op {
                    GateOp::And => "and",
                    GateOp::Or => "or",
                    _ => "g",
                });
                let out = format!("{name}_o");
                let comp = self
                    .lib
                    .gate(op, 1, n)
                    .map_err(|e| ControlError(e.to_string()))?;
                self.netlist.add_net(&out, 1)?;
                let mut inst = Instance::new(&name, Arc::new(comp));
                for (i, net) in nets.iter().enumerate() {
                    inst.connect(&format!("I{i}"), net);
                }
                inst.connect("O", &out);
                self.netlist.add_instance(inst)?;
                Ok(out)
            }
        }
    }

    /// Builds the SOP network for a cover over the given input bit nets;
    /// returns the net carrying the function value.
    fn sop(&mut self, cover: &[Cube], input_nets: &[String]) -> Result<String, ControlError> {
        if cover.is_empty() {
            return self.const_net(1, 0);
        }
        let mut terms = Vec::new();
        for cube in cover {
            let lits = cube.literals(input_nets.len());
            if lits.is_empty() {
                return self.const_net(1, 1); // tautology
            }
            let mut nets = Vec::new();
            for (idx, positive) in lits {
                let net = if positive {
                    input_nets[idx].clone()
                } else {
                    self.inverted(&input_nets[idx])?
                };
                nets.push(net);
            }
            terms.push(self.gate(GateOp::And, &nets)?);
        }
        self.gate(GateOp::Or, &terms)
    }
}

/// Compiles a state sequencing table into a gate-level controller with
/// dense binary state encoding.
///
/// # Errors
///
/// [`ControlError`] when the table is invalid or too large to minimize
/// exactly.
pub fn compile_controller(table: &StateTable) -> Result<Controller, ControlError> {
    compile_controller_with(table, Encoding::Binary)
}

/// Like [`compile_controller`], with an explicit state-encoding choice.
///
/// # Errors
///
/// [`ControlError`] when the table is invalid or too large to minimize
/// exactly (one-hot encodings of large tables hit the budget first).
pub fn compile_controller_with(
    table: &StateTable,
    encoding: Encoding,
) -> Result<Controller, ControlError> {
    table.validate().map_err(ControlError)?;
    let nstates = table.states().len();
    if nstates == 0 {
        return Err(ControlError("empty state table".to_string()));
    }
    let sbits = match encoding {
        Encoding::Binary => select_width(nstates),
        Encoding::OneHot => nstates,
    };
    let statuses = table.statuses();
    let inputs = sbits + statuses.len();
    if inputs > 20 {
        return Err(ControlError(format!(
            "{inputs} controller inputs exceed the exact-minimization budget"
        )));
    }
    // Register codes: binary is the index; one-hot stores the reset
    // state's bit inverted so that all-zero reset is state 0.
    let code_of_state = |s: usize| -> u64 {
        match encoding {
            Encoding::Binary => s as u64,
            Encoding::OneHot => (1u64 << s) ^ 1,
        }
    };
    let state_of_code = |code: u64| -> Option<usize> {
        match encoding {
            Encoding::Binary => {
                let s = code as usize;
                (s < nstates).then_some(s)
            }
            Encoding::OneHot => {
                let actual = code ^ 1;
                (actual.count_ones() == 1).then(|| actual.trailing_zeros() as usize)
            }
        }
    };

    // Truth tables.
    let controls: Vec<(String, usize)> =
        table.controls().map(|(n, w)| (n.to_string(), w)).collect();
    let mut next_on: Vec<Vec<u64>> = vec![Vec::new(); sbits];
    let mut ctl_on: BTreeMap<(usize, usize), Vec<u64>> = BTreeMap::new(); // (control idx, bit)
    let mut dc: Vec<u64> = Vec::new();
    for code in 0..(1u64 << inputs) {
        let state_code = code & ((1u64 << sbits) - 1);
        let Some(state) = state_of_code(state_code) else {
            dc.push(code);
            continue;
        };
        let st = &table.states()[state];
        let next = match &st.transition {
            Transition::Next(n) => *n,
            Transition::Done => state,
            Transition::Branch {
                cond,
                if_true,
                if_false,
            } => {
                let bit_idx = statuses
                    .iter()
                    .position(|s| s == cond)
                    .expect("status collected");
                if (code >> (sbits + bit_idx)) & 1 == 1 {
                    *if_true
                } else {
                    *if_false
                }
            }
        };
        let next_code = code_of_state(next);
        for (b, on) in next_on.iter_mut().enumerate() {
            if (next_code >> b) & 1 == 1 {
                on.push(code);
            }
        }
        for (ci, (name, width)) in controls.iter().enumerate() {
            let value = st.asserts.get(name).copied().unwrap_or(0);
            for b in 0..*width {
                if (value >> b) & 1 == 1 {
                    ctl_on.entry((ci, b)).or_default().push(code);
                }
            }
        }
    }

    // Build the netlist.
    let mut b = Builder {
        netlist: Netlist::new("controller"),
        lib: GenusLibrary::standard(),
        counter: 0,
        consts: BTreeMap::new(),
        inverters: BTreeMap::new(),
    };
    b.netlist.add_net("clk", 1)?;
    b.netlist.expose_input("clk", "clk")?;
    let mut input_nets: Vec<String> = Vec::new();
    for i in 0..sbits {
        b.netlist.add_net(&format!("fsm_s{i}_q"), 1)?;
        b.netlist.add_net(&format!("fsm_s{i}_d"), 1)?;
        input_nets.push(format!("fsm_s{i}_q"));
    }
    for s in &statuses {
        b.netlist.add_net(s, 1)?;
        b.netlist.expose_input(&format!("st_{s}"), s)?;
        input_nets.push(s.clone());
    }

    let mut stats = ControllerStats {
        states: nstates,
        state_bits: sbits,
        status_bits: statuses.len(),
        cubes: 0,
        literals: 0,
    };

    // Next-state logic feeding the state register bits.
    for (i, on) in next_on.iter().enumerate() {
        let cover = minimize(inputs, on, &dc);
        stats.cubes += cover.len();
        stats.literals += cover
            .iter()
            .map(|c| c.literals(inputs).len())
            .sum::<usize>();
        let net = b.sop(&cover, &input_nets)?;
        // Tie the function net onto the register's D input.
        let comp = b.lib.buffer(1).map_err(|e| ControlError(e.to_string()))?;
        let name = b.fresh("dbuf");
        b.netlist.add_instance(
            Instance::new(&name, Arc::new(comp))
                .with_connection("I", &net)
                .with_connection("O", &format!("fsm_s{i}_d")),
        )?;
        let reg = b.lib.register(1).map_err(|e| ControlError(e.to_string()))?;
        b.netlist.add_instance(
            Instance::new(&format!("fsm_s{i}_reg"), Arc::new(reg))
                .with_connection("D", &format!("fsm_s{i}_d"))
                .with_connection("CLK", "clk")
                .with_connection("Q", &format!("fsm_s{i}_q")),
        )?;
    }

    // Control outputs (functions of state only, but minimized over the
    // full input space with the same don't-cares).
    for (ci, (name, width)) in controls.iter().enumerate() {
        let mut bit_nets = Vec::new();
        for bit in 0..*width {
            let on = ctl_on.get(&(ci, bit)).cloned().unwrap_or_default();
            let cover = minimize(inputs, &on, &dc);
            stats.cubes += cover.len();
            stats.literals += cover
                .iter()
                .map(|c| c.literals(inputs).len())
                .sum::<usize>();
            bit_nets.push(b.sop(&cover, &input_nets)?);
        }
        // Assemble the (possibly multi-bit) control net.
        if *width == 1 {
            b.netlist.add_net(name, 1)?;
            let comp = b.lib.buffer(1).map_err(|e| ControlError(e.to_string()))?;
            let iname = b.fresh("obuf");
            b.netlist.add_instance(
                Instance::new(&iname, Arc::new(comp))
                    .with_connection("I", &bit_nets[0])
                    .with_connection("O", name),
            )?;
        } else {
            b.netlist.add_net(name, *width)?;
            let concat = genus::build::component_for_spec(
                &genus::spec::ComponentSpec::new(genus::kind::ComponentKind::Concat, 1)
                    .with_inputs(*width),
            )
            .map_err(|e| ControlError(e.to_string()))?;
            let iname = b.fresh("cat");
            let mut inst = Instance::new(&iname, Arc::new(concat));
            for (i, bn) in bit_nets.iter().enumerate() {
                inst.connect(&format!("I{i}"), bn);
            }
            inst.connect("O", name);
            b.netlist.add_instance(inst)?;
        }
        b.netlist.expose_output(&format!("ctl_{name}"), name)?;
    }

    b.netlist.validate()?;
    Ok(Controller {
        netlist: b.netlist,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls::statetable::State;
    use std::collections::BTreeMap as Map;

    fn two_state_table() -> StateTable {
        let mut t = StateTable::new();
        t.declare_control("we", 1);
        t.declare_control("sel", 2);
        t.push_state(State {
            name: "s0".into(),
            asserts: [("we".to_string(), 1u64), ("sel".to_string(), 2u64)]
                .into_iter()
                .collect(),
            transition: Transition::Next(1),
        });
        t.push_state(State {
            name: "s1".into(),
            asserts: Map::new(),
            transition: Transition::Branch {
                cond: "flag".into(),
                if_true: 0,
                if_false: 1,
            },
        });
        t
    }

    #[test]
    fn compiles_and_validates() {
        let ctl = compile_controller(&two_state_table()).unwrap();
        assert_eq!(ctl.stats.states, 2);
        assert_eq!(ctl.stats.state_bits, 1);
        assert_eq!(ctl.stats.status_bits, 1);
        assert!(ctl.netlist.validate().is_ok());
        assert!(ctl.netlist.ports().iter().any(|p| p.name == "ctl_we"));
        assert!(ctl.netlist.ports().iter().any(|p| p.name == "st_flag"));
    }

    #[test]
    fn controller_sequences_correctly_in_simulation() {
        use genus::behavior::Env;
        let ctl = compile_controller(&two_state_table()).unwrap();
        let flat = rtlsim::FlatDesign::from_netlist(&ctl.netlist).unwrap();
        let mut sim = rtlsim::Simulator::new(&flat).unwrap();
        let step = |sim: &mut rtlsim::Simulator, flag: u64| -> (u64, u64) {
            let out = sim
                .step(&Env::from([
                    ("clk".to_string(), Bits::zero(1)),
                    ("st_flag".to_string(), Bits::from_u64(1, flag)),
                ]))
                .unwrap();
            (
                out["ctl_we"].to_u64().unwrap(),
                out["ctl_sel"].to_u64().unwrap(),
            )
        };
        // State 0: we=1, sel=2. Then state 1 until flag, then back to 0.
        assert_eq!(step(&mut sim, 0), (1, 2));
        assert_eq!(step(&mut sim, 0), (0, 0));
        assert_eq!(step(&mut sim, 0), (0, 0));
        assert_eq!(step(&mut sim, 1), (0, 0)); // flag seen: next is s0
        assert_eq!(step(&mut sim, 0), (1, 2));
    }

    #[test]
    fn empty_table_rejected() {
        assert!(compile_controller(&StateTable::new()).is_err());
    }

    #[test]
    fn one_hot_controller_behaves_identically() {
        use genus::behavior::Env;
        let table = two_state_table();
        for encoding in [Encoding::Binary, Encoding::OneHot] {
            let ctl = compile_controller_with(&table, encoding).unwrap();
            assert!(ctl.netlist.validate().is_ok());
            let flat = rtlsim::FlatDesign::from_netlist(&ctl.netlist).unwrap();
            let mut sim = rtlsim::Simulator::new(&flat).unwrap();
            let mut trace = Vec::new();
            for flag in [0u64, 0, 0, 1, 0, 1, 0] {
                let out = sim
                    .step(&Env::from([
                        ("clk".to_string(), Bits::zero(1)),
                        ("st_flag".to_string(), Bits::from_u64(1, flag)),
                    ]))
                    .unwrap();
                trace.push((
                    out["ctl_we"].to_u64().unwrap(),
                    out["ctl_sel"].to_u64().unwrap(),
                ));
            }
            assert_eq!(
                trace,
                vec![(1, 2), (0, 0), (0, 0), (0, 0), (1, 2), (0, 0), (1, 2)],
                "{encoding:?}"
            );
        }
    }

    #[test]
    fn one_hot_uses_more_flops_fewer_literals_per_cube() {
        let table = two_state_table();
        let binary = compile_controller_with(&table, Encoding::Binary).unwrap();
        let onehot = compile_controller_with(&table, Encoding::OneHot).unwrap();
        assert!(onehot.stats.state_bits > binary.stats.state_bits);
    }
}
