//! Levelized simulation of flattened designs.
//!
//! Combinational cells evaluate in topological order; sequential cells
//! (registers and anything built on them) publish their current state at
//! the start of the pass and latch their next state when the clock
//! [`step`](Simulator::step)s.
//!
//! Construction interns every net name to a dense `u32` id and compiles
//! all wiring expressions against those ids, so the per-cycle hot path
//! reads and writes a flat value array (reused across
//! [`step`](Simulator::step)/[`eval`](Simulator::eval) calls) instead of
//! rebuilding string-keyed maps every cycle.

use crate::flatten::{FlatCell, FlatDesign};
use dtas::template::Signal;
use genus::behavior::Env;
use rtl_base::bits::Bits;
use rtl_base::graph::Digraph;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Simulation error.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The combinational logic is cyclic.
    CombinationalCycle(String),
    /// A signal or model evaluation failed (missing net, width clash).
    Eval(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through {n}")
            }
            SimError::Eval(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Dense net-name table: names interned to `u32` ids at construction.
#[derive(Default)]
struct NetTable {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl NetTable {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }
}

/// A wiring expression compiled against interned net ids.
enum CompiledSignal {
    Net(u32),
    Parent(String),
    Const(Bits),
    Slice(Box<CompiledSignal>, usize, usize),
    Cat(Vec<CompiledSignal>),
    Replicate(Box<CompiledSignal>, usize),
}

impl CompiledSignal {
    fn compile(sig: &Signal, nets: &mut NetTable) -> CompiledSignal {
        match sig {
            Signal::Net(n) => CompiledSignal::Net(nets.intern(n)),
            Signal::Parent(p) => CompiledSignal::Parent(p.clone()),
            Signal::Const(b) => CompiledSignal::Const(b.clone()),
            Signal::Slice(inner, lo, len) => {
                CompiledSignal::Slice(Box::new(CompiledSignal::compile(inner, nets)), *lo, *len)
            }
            Signal::Cat(parts) => CompiledSignal::Cat(
                parts
                    .iter()
                    .map(|p| CompiledSignal::compile(p, nets))
                    .collect(),
            ),
            Signal::Replicate(inner, n) => {
                CompiledSignal::Replicate(Box::new(CompiledSignal::compile(inner, nets)), *n)
            }
        }
    }

    /// The interned nets this signal reads.
    fn net_reads(&self, out: &mut Vec<u32>) {
        match self {
            CompiledSignal::Net(id) => out.push(*id),
            CompiledSignal::Parent(_) | CompiledSignal::Const(_) => {}
            CompiledSignal::Slice(inner, _, _) | CompiledSignal::Replicate(inner, _) => {
                inner.net_reads(out)
            }
            CompiledSignal::Cat(parts) => {
                for p in parts {
                    p.net_reads(out);
                }
            }
        }
    }

    /// Mirrors [`Signal::eval`] over the flat net-value array.
    fn eval(&self, nets: &[Option<Bits>], names: &[String], parents: &Env) -> Result<Bits, String> {
        match self {
            CompiledSignal::Net(id) => nets[*id as usize]
                .clone()
                .ok_or_else(|| format!("net {} has no value", names[*id as usize])),
            CompiledSignal::Parent(p) => parents
                .get(p)
                .cloned()
                .ok_or_else(|| format!("parent port {p} has no value")),
            CompiledSignal::Const(b) => Ok(b.clone()),
            CompiledSignal::Slice(inner, lo, len) => {
                let v = inner.eval(nets, names, parents)?;
                if lo + len > v.width() {
                    return Err(format!(
                        "slice [{lo},{lo}+{len}) out of width {}",
                        v.width()
                    ));
                }
                Ok(v.slice(*lo, *len))
            }
            CompiledSignal::Cat(parts) => {
                let mut acc = Bits::zero(0);
                for p in parts {
                    acc = acc.concat(&p.eval(nets, names, parents)?);
                }
                Ok(acc)
            }
            CompiledSignal::Replicate(inner, n) => {
                let v = inner.eval(nets, names, parents)?;
                let mut acc = Bits::zero(0);
                for _ in 0..*n {
                    acc = acc.concat(&v);
                }
                Ok(acc)
            }
        }
    }
}

/// A producer in the compiled evaluation order (registered outputs are
/// published from state before the pass, so they never appear here).
enum Producer {
    /// One combinational output port of one cell, with its driven net,
    /// the (dependency-filtered) inputs to evaluate, and the eval target
    /// set — all precomputed at construction.
    CellPort {
        cell: usize,
        port: String,
        net: u32,
        inputs: Vec<(String, CompiledSignal)>,
        targets: BTreeSet<String>,
    },
    /// A net defined as an expression over other nets.
    Alias { net: u32, sig: CompiledSignal },
}

/// A two-phase (evaluate, commit) simulator over a [`FlatDesign`].
///
/// State is held per sequential cell as the env of its output ports;
/// everything resets to zero.
pub struct Simulator<'a> {
    design: &'a FlatDesign,
    /// Interned net names (id → name), for error reporting.
    net_names: Vec<String>,
    /// Compiled combinational evaluation order.
    order: Vec<Producer>,
    /// Registered outputs published from state before each pass:
    /// `(cell, port, net, width)`.
    reg_publish: Vec<(usize, String, u32, usize)>,
    /// Per sequential cell: all inputs compiled, for next-state eval.
    seq_inputs: Vec<Option<Vec<(String, CompiledSignal)>>>,
    /// Compiled primary outputs.
    outputs: Vec<(String, CompiledSignal)>,
    /// Current state of sequential cells, indexed like `design.cells`.
    state: Vec<Env>,
    /// Net-value scratch, reused across passes (interior mutability so
    /// [`eval`](Self::eval) stays `&self`).
    scratch: RefCell<Vec<Option<Bits>>>,
}

impl<'a> Simulator<'a> {
    /// Interns net names, compiles all wiring, and levelizes the design.
    ///
    /// # Errors
    ///
    /// [`SimError::CombinationalCycle`] when the combinational logic is
    /// cyclic.
    pub fn new(design: &'a FlatDesign) -> Result<Self, SimError> {
        let mut nets = NetTable::default();

        // Producer graph: one node per bound cell output port and per
        // alias (registered outputs included — they are edge sources).
        enum RawProducer<'d> {
            CellPort(usize, &'d str, u32),
            Alias(&'d str, u32),
        }
        let mut producers: Vec<RawProducer> = Vec::new();
        let mut net_producer: Vec<Option<usize>> = Vec::new();
        let bind =
            |nets: &mut NetTable, net_producer: &mut Vec<Option<usize>>, net: &str, idx: usize| {
                let id = nets.intern(net);
                if net_producer.len() <= id as usize {
                    net_producer.resize(id as usize + 1, None);
                }
                net_producer[id as usize] = Some(idx);
                id
            };
        for (i, cell) in design.cells.iter().enumerate() {
            for (port, net) in &cell.outputs {
                let idx = producers.len();
                let id = bind(&mut nets, &mut net_producer, net, idx);
                producers.push(RawProducer::CellPort(i, port, id));
            }
        }
        for (net, _) in design.aliases.iter() {
            let idx = producers.len();
            let id = bind(&mut nets, &mut net_producer, net, idx);
            producers.push(RawProducer::Alias(net, id));
        }

        // Dependency-filtered, compiled inputs per cell output port.
        let deps: Vec<_> = design
            .cells
            .iter()
            .map(|c| c.model.output_dependencies())
            .collect();
        let compile_inputs = |cell: &FlatCell,
                              needed: Option<&BTreeSet<String>>,
                              nets: &mut NetTable|
         -> Vec<(String, CompiledSignal)> {
            cell.inputs
                .iter()
                .filter(|(in_port, _)| needed.is_none_or(|set| set.contains(*in_port)))
                .map(|(in_port, sig)| (in_port.clone(), CompiledSignal::compile(sig, nets)))
                .collect()
        };

        let mut g = Digraph::new(producers.len());
        let mut compiled: Vec<Option<Producer>> = Vec::with_capacity(producers.len());
        let mut reads = Vec::new();
        for (idx, p) in producers.iter().enumerate() {
            match p {
                RawProducer::CellPort(i, port, net_id) => {
                    let cell = &design.cells[*i];
                    if cell.model.is_registered_output(port) {
                        // State cuts the dependency; published pre-pass.
                        compiled.push(None);
                        continue;
                    }
                    let needed = deps[*i].get(*port);
                    let inputs = compile_inputs(cell, needed, &mut nets);
                    for (_, sig) in &inputs {
                        reads.clear();
                        sig.net_reads(&mut reads);
                        for &r in &reads {
                            if let Some(Some(from)) = net_producer.get(r as usize) {
                                g.add_edge(*from, idx, 0.0);
                            }
                        }
                    }
                    compiled.push(Some(Producer::CellPort {
                        cell: *i,
                        port: port.to_string(),
                        net: *net_id,
                        inputs,
                        targets: [port.to_string()].into_iter().collect(),
                    }));
                }
                RawProducer::Alias(net, net_id) => {
                    let sig = CompiledSignal::compile(&design.aliases[*net], &mut nets);
                    reads.clear();
                    sig.net_reads(&mut reads);
                    for &r in &reads {
                        if let Some(Some(from)) = net_producer.get(r as usize) {
                            g.add_edge(*from, idx, 0.0);
                        }
                    }
                    compiled.push(Some(Producer::Alias { net: *net_id, sig }));
                }
            }
        }
        let order_ids = g.topo_sort().map_err(|e| {
            let name = match &producers[e.node] {
                RawProducer::CellPort(i, port, _) => {
                    format!("{}.{port}", design.cells[*i].path)
                }
                RawProducer::Alias(n, _) => n.to_string(),
            };
            SimError::CombinationalCycle(name)
        })?;
        let mut slots: Vec<Option<Producer>> = compiled;
        let order: Vec<Producer> = order_ids
            .into_iter()
            .filter_map(|i| slots[i].take())
            .collect();

        // Registered outputs published from state before each pass.
        let mut reg_publish = Vec::new();
        let mut seq_inputs: Vec<Option<Vec<(String, CompiledSignal)>>> =
            Vec::with_capacity(design.cells.len());
        for (i, cell) in design.cells.iter().enumerate() {
            if cell.model.is_sequential() {
                for (port, net) in &cell.outputs {
                    if cell.model.is_registered_output(port) {
                        let id = nets.intern(net);
                        reg_publish.push((i, port.clone(), id, port_width(cell, port)));
                    }
                }
                seq_inputs.push(Some(compile_inputs(cell, None, &mut nets)));
            } else {
                seq_inputs.push(None);
            }
        }

        let outputs = design
            .outputs
            .iter()
            .map(|(name, sig)| (name.clone(), CompiledSignal::compile(sig, &mut nets)))
            .collect();

        let state = design.cells.iter().map(zero_state).collect();
        let scratch = RefCell::new(vec![None; nets.names.len()]);
        Ok(Simulator {
            design,
            net_names: nets.names,
            order,
            reg_publish,
            seq_inputs,
            outputs,
            state,
            scratch,
        })
    }

    /// Resets all sequential state to zero.
    pub fn reset(&mut self) {
        self.state = self.design.cells.iter().map(zero_state).collect();
    }

    /// Direct access to a cell's state (testing hook).
    pub fn cell_state(&self, path: &str) -> Option<&Env> {
        self.design
            .cells
            .iter()
            .position(|c| c.path == path)
            .map(|i| &self.state[i])
    }

    fn pass(&self, inputs: &Env, nets: &mut [Option<Bits>]) -> Result<Vec<Option<Env>>, SimError> {
        for slot in nets.iter_mut() {
            *slot = None;
        }
        let names = &self.net_names;
        let mut pending: Vec<Option<Env>> = vec![None; self.design.cells.len()];
        // Publish registered outputs first (they are sources); a
        // sequential cell's combinational read ports are evaluated in
        // topological order like any other producer.
        for (i, port, net, width) in &self.reg_publish {
            let v = self.state[*i]
                .get(port)
                .cloned()
                .unwrap_or_else(|| Bits::zero(*width));
            nets[*net as usize] = Some(v);
        }
        for producer in &self.order {
            match producer {
                Producer::CellPort {
                    cell: i,
                    port,
                    net,
                    inputs: cell_inputs,
                    targets,
                } => {
                    let cell = &self.design.cells[*i];
                    // Evaluate just this output, using only the inputs it
                    // depends on (others may not be resolved yet).
                    let mut env = Env::new();
                    if cell.model.is_sequential() {
                        // Combinational reads see the current state.
                        for (k, v) in &self.state[*i] {
                            env.insert(k.clone(), v.clone());
                        }
                    }
                    for (in_port, sig) in cell_inputs {
                        let v = sig.eval(nets, names, inputs).map_err(SimError::Eval)?;
                        env.insert(in_port.clone(), v);
                    }
                    let out = cell
                        .model
                        .eval_filtered(&env, Some(targets))
                        .map_err(|e| SimError::Eval(format!("{}: {e}", cell.path)))?;
                    let v = out.get(port).cloned().ok_or_else(|| {
                        SimError::Eval(format!("{} missing output {port}", cell.path))
                    })?;
                    nets[*net as usize] = Some(v);
                }
                Producer::Alias { net, sig } => {
                    let v = sig.eval(nets, names, inputs).map_err(SimError::Eval)?;
                    nets[*net as usize] = Some(v);
                }
            }
        }
        // Next states for sequential cells, now that all nets are known.
        for (i, cell) in self.design.cells.iter().enumerate() {
            let Some(cell_inputs) = &self.seq_inputs[i] else {
                continue;
            };
            let mut env = self.state[i].clone();
            for (port, sig) in cell_inputs {
                let v = sig.eval(nets, names, inputs).map_err(SimError::Eval)?;
                env.insert(port.clone(), v);
            }
            let next = cell
                .model
                .eval(&env)
                .map_err(|e| SimError::Eval(format!("{}: {e}", cell.path)))?;
            pending[i] = Some(next);
        }
        Ok(pending)
    }

    /// Evaluates the combinational function without advancing state;
    /// returns the primary outputs.
    ///
    /// # Errors
    ///
    /// [`SimError::Eval`] on missing nets or model failures.
    pub fn eval(&self, inputs: &Env) -> Result<Env, SimError> {
        let mut nets = self.scratch.borrow_mut();
        let _ = self.pass(inputs, &mut nets)?;
        self.primary_outputs(&nets, inputs)
    }

    /// One clock cycle: evaluates, returns the (pre-edge) primary outputs,
    /// then commits next state.
    ///
    /// # Errors
    ///
    /// [`SimError::Eval`] on missing nets or model failures.
    pub fn step(&mut self, inputs: &Env) -> Result<Env, SimError> {
        // Move the scratch out so state commits below don't fight the
        // borrow; it goes back (same allocation) before returning.
        let mut nets = std::mem::take(self.scratch.get_mut());
        let result = self.pass(inputs, &mut nets);
        let outs = result.and_then(|pending| {
            let outs = self.primary_outputs(&nets, inputs)?;
            for (i, next) in pending.into_iter().enumerate() {
                if let Some(next) = next {
                    // Keep only the output ports as state.
                    let cell = &self.design.cells[i];
                    let mut s = Env::new();
                    for port in cell.model.outputs() {
                        if let Some(v) = next.get(&port.name) {
                            s.insert(port.name.clone(), v.clone());
                        }
                    }
                    self.state[i] = s;
                }
            }
            Ok(outs)
        });
        *self.scratch.get_mut() = nets;
        outs
    }

    fn primary_outputs(&self, nets: &[Option<Bits>], inputs: &Env) -> Result<Env, SimError> {
        let mut out = Env::new();
        for (name, sig) in &self.outputs {
            let v = sig
                .eval(nets, &self.net_names, inputs)
                .map_err(SimError::Eval)?;
            out.insert(name.clone(), v);
        }
        Ok(out)
    }
}

fn port_width(cell: &FlatCell, port: &str) -> usize {
    cell.model.port(port).map(|p| p.width).unwrap_or(1)
}

fn zero_state(cell: &FlatCell) -> Env {
    cell.model
        .outputs()
        .map(|p| (p.name.clone(), Bits::zero(p.width)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::FlatDesign;
    use cells::lsi::lsi_logic_subset;
    use dtas::Dtas;
    use genus::kind::ComponentKind;
    use genus::op::{Op, OpSet};
    use genus::spec::ComponentSpec;

    fn env(pairs: &[(&str, Bits)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn simulate_ripple_adder() {
        let spec = ComponentSpec::new(ComponentKind::AddSub, 8)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let set = Dtas::new(lsi_logic_subset()).synthesize(&spec).unwrap();
        let flat = FlatDesign::from_implementation(&set.alternatives[0].implementation).unwrap();
        let sim = Simulator::new(&flat).unwrap();
        let out = sim
            .eval(&env(&[
                ("A", Bits::from_u64(8, 200)),
                ("B", Bits::from_u64(8, 100)),
                ("CI", Bits::from_u64(1, 1)),
            ]))
            .unwrap();
        assert_eq!(out["O"].to_u64(), Some((200 + 100 + 1) & 0xff));
        assert_eq!(out["CO"].to_u64(), Some(1));
    }

    #[test]
    fn simulate_synthesized_counter() {
        let spec = ComponentSpec::new(ComponentKind::Counter, 4)
            .with_ops([Op::Load, Op::CountUp, Op::CountDown].into_iter().collect())
            .with_enable(true)
            .with_style("SYNCHRONOUS");
        let set = Dtas::new(lsi_logic_subset()).synthesize(&spec).unwrap();
        let flat = FlatDesign::from_implementation(&set.alternatives[0].implementation).unwrap();
        let mut sim = Simulator::new(&flat).unwrap();
        let step = |sim: &mut Simulator, cen: u64, load: u64, up: u64, down: u64| {
            sim.step(&env(&[
                ("I0", Bits::from_u64(4, 9)),
                ("CLK", Bits::zero(1)),
                ("CEN", Bits::from_u64(1, cen)),
                ("CLOAD", Bits::from_u64(1, load)),
                ("CUP", Bits::from_u64(1, up)),
                ("CDOWN", Bits::from_u64(1, down)),
            ]))
            .unwrap()["O0"]
                .to_u64()
                .unwrap()
        };
        assert_eq!(step(&mut sim, 1, 0, 1, 0), 0); // pre-edge value
        assert_eq!(step(&mut sim, 1, 0, 1, 0), 1);
        assert_eq!(step(&mut sim, 1, 0, 1, 0), 2);
        assert_eq!(step(&mut sim, 0, 0, 1, 0), 3); // disabled: holds
        assert_eq!(step(&mut sim, 1, 1, 0, 0), 3); // load fires
        assert_eq!(step(&mut sim, 1, 0, 0, 1), 9); // count down
        assert_eq!(step(&mut sim, 1, 0, 0, 0), 8); // hold
        assert_eq!(step(&mut sim, 1, 0, 0, 0), 8);
    }
}
