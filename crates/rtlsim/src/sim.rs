//! Levelized simulation of flattened designs.
//!
//! Combinational cells evaluate in topological order; sequential cells
//! (registers and anything built on them) publish their current state at
//! the start of the pass and latch their next state when the clock
//! [`step`](Simulator::step)s.
//!
//! Construction interns every net name to a dense `u32` id and compiles
//! all wiring expressions against those ids, so the per-cycle hot path
//! reads and writes a flat value array (reused across
//! [`step`](Simulator::step)/[`eval`](Simulator::eval) calls) instead of
//! rebuilding string-keyed maps every cycle.

use crate::flatten::{FlatCell, FlatDesign};
use dtas::template::Signal;
use genus::behavior::Env;
use genus::compiled::{CompiledModel, PortId};
use genus::component::Component;
use rtl_base::bits::Bits;
use rtl_base::graph::Digraph;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Simulation error.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The combinational logic is cyclic.
    CombinationalCycle(String),
    /// A signal or model evaluation failed (missing net, width clash).
    Eval(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through {n}")
            }
            SimError::Eval(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Dense net-name table: names interned to `u32` ids at construction.
#[derive(Default)]
struct NetTable {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl NetTable {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }
}

/// A wiring expression compiled against interned net ids.
enum CompiledSignal {
    Net(u32),
    Parent(String),
    Const(Bits),
    Slice(Box<CompiledSignal>, usize, usize),
    Cat(Vec<CompiledSignal>),
    Replicate(Box<CompiledSignal>, usize),
}

impl CompiledSignal {
    fn compile(sig: &Signal, nets: &mut NetTable) -> CompiledSignal {
        match sig {
            Signal::Net(n) => CompiledSignal::Net(nets.intern(n)),
            Signal::Parent(p) => CompiledSignal::Parent(p.clone()),
            Signal::Const(b) => CompiledSignal::Const(b.clone()),
            Signal::Slice(inner, lo, len) => {
                CompiledSignal::Slice(Box::new(CompiledSignal::compile(inner, nets)), *lo, *len)
            }
            Signal::Cat(parts) => CompiledSignal::Cat(
                parts
                    .iter()
                    .map(|p| CompiledSignal::compile(p, nets))
                    .collect(),
            ),
            Signal::Replicate(inner, n) => {
                CompiledSignal::Replicate(Box::new(CompiledSignal::compile(inner, nets)), *n)
            }
        }
    }

    /// The interned nets this signal reads.
    fn net_reads(&self, out: &mut Vec<u32>) {
        match self {
            CompiledSignal::Net(id) => out.push(*id),
            CompiledSignal::Parent(_) | CompiledSignal::Const(_) => {}
            CompiledSignal::Slice(inner, _, _) | CompiledSignal::Replicate(inner, _) => {
                inner.net_reads(out)
            }
            CompiledSignal::Cat(parts) => {
                for p in parts {
                    p.net_reads(out);
                }
            }
        }
    }

    /// Mirrors [`Signal::eval`] over the flat net-value array.
    fn eval(&self, nets: &[Option<Bits>], names: &[String], parents: &Env) -> Result<Bits, String> {
        match self {
            CompiledSignal::Net(id) => nets[*id as usize]
                .clone()
                .ok_or_else(|| format!("net {} has no value", names[*id as usize])),
            CompiledSignal::Parent(p) => parents
                .get(p)
                .cloned()
                .ok_or_else(|| format!("parent port {p} has no value")),
            CompiledSignal::Const(b) => Ok(b.clone()),
            CompiledSignal::Slice(inner, lo, len) => {
                let v = inner.eval(nets, names, parents)?;
                if lo + len > v.width() {
                    return Err(format!(
                        "slice [{lo},{lo}+{len}) out of width {}",
                        v.width()
                    ));
                }
                Ok(v.slice(*lo, *len))
            }
            CompiledSignal::Cat(parts) => {
                let mut acc = Bits::zero(0);
                for p in parts {
                    acc = acc.concat(&p.eval(nets, names, parents)?);
                }
                Ok(acc)
            }
            CompiledSignal::Replicate(inner, n) => {
                let v = inner.eval(nets, names, parents)?;
                let mut acc = Bits::zero(0);
                for _ in 0..*n {
                    acc = acc.concat(&v);
                }
                Ok(acc)
            }
        }
    }
}

/// A producer in the compiled evaluation order (registered outputs are
/// published from state before the pass, so they never appear here).
enum Producer {
    /// One combinational output port of one cell, with its driven net,
    /// the (dependency-filtered) inputs to evaluate, and the eval target
    /// mask — all precomputed against the cell's interned-port model at
    /// construction.
    CellPort {
        cell: usize,
        /// Port name, kept for error reporting only.
        port: String,
        /// The port's slot in the cell's [`CompiledModel`].
        out_slot: PortId,
        net: u32,
        inputs: Vec<(PortId, CompiledSignal)>,
        targets: Vec<bool>,
    },
    /// A net defined as an expression over other nets.
    Alias { net: u32, sig: CompiledSignal },
}

/// A two-phase (evaluate, commit) simulator over a [`FlatDesign`].
///
/// State is held per sequential cell as the slot values of its output
/// ports; everything resets to zero.
///
/// Construction compiles every distinct cell model to a
/// [`CompiledModel`] (port names interned to dense ids, effect
/// expressions precompiled), so the per-cycle hot path never builds a
/// string-keyed [`Env`] per cell — it fills a reused per-cell slot array
/// instead.
pub struct Simulator<'a> {
    design: &'a FlatDesign,
    /// Interned net names (id → name), for error reporting.
    net_names: Vec<String>,
    /// Interned-port behavioral model per cell (shared across cells
    /// instantiating the same component).
    compiled: Vec<Arc<CompiledModel>>,
    /// Compiled combinational evaluation order.
    order: Vec<Producer>,
    /// Registered outputs published from state before each pass:
    /// `(cell, slot, net, width)`.
    reg_publish: Vec<(usize, PortId, u32, usize)>,
    /// Per sequential cell: all inputs compiled, for next-state eval.
    seq_inputs: Vec<Option<Vec<(PortId, CompiledSignal)>>>,
    /// Compiled primary outputs.
    outputs: Vec<(String, CompiledSignal)>,
    /// Current state of sequential cells (slot-indexed, `Some` at output
    /// slots), indexed like `design.cells`.
    state: Vec<Vec<Option<Bits>>>,
    /// Net-value scratch, reused across passes (interior mutability so
    /// [`eval`](Self::eval) stays `&self`).
    scratch: RefCell<Vec<Option<Bits>>>,
    /// Per-cell slot-array scratch for model evaluation, reused across
    /// passes.
    cell_scratch: RefCell<Vec<Vec<Option<Bits>>>>,
}

impl<'a> Simulator<'a> {
    /// Interns net names, compiles all wiring, and levelizes the design.
    ///
    /// # Errors
    ///
    /// [`SimError::CombinationalCycle`] when the combinational logic is
    /// cyclic.
    pub fn new(design: &'a FlatDesign) -> Result<Self, SimError> {
        let mut nets = NetTable::default();

        // Compile each distinct component model once (cells share models
        // via `Arc`, so a 16-slice adder compiles one model, not 16).
        let mut model_cache: HashMap<*const Component, Arc<CompiledModel>> = HashMap::new();
        let compiled: Vec<Arc<CompiledModel>> = design
            .cells
            .iter()
            .map(|cell| {
                model_cache
                    .entry(Arc::as_ptr(&cell.model))
                    .or_insert_with(|| Arc::new(cell.model.compiled()))
                    .clone()
            })
            .collect();

        // Producer graph: one node per bound cell output port and per
        // alias (registered outputs included — they are edge sources).
        enum RawProducer<'d> {
            CellPort(usize, &'d str, u32),
            Alias(&'d str, u32),
        }
        let mut producers: Vec<RawProducer> = Vec::new();
        let mut net_producer: Vec<Option<usize>> = Vec::new();
        let bind =
            |nets: &mut NetTable, net_producer: &mut Vec<Option<usize>>, net: &str, idx: usize| {
                let id = nets.intern(net);
                if net_producer.len() <= id as usize {
                    net_producer.resize(id as usize + 1, None);
                }
                net_producer[id as usize] = Some(idx);
                id
            };
        for (i, cell) in design.cells.iter().enumerate() {
            for (port, net) in &cell.outputs {
                let idx = producers.len();
                let id = bind(&mut nets, &mut net_producer, net, idx);
                producers.push(RawProducer::CellPort(i, port, id));
            }
        }
        for (net, _) in design.aliases.iter() {
            let idx = producers.len();
            let id = bind(&mut nets, &mut net_producer, net, idx);
            producers.push(RawProducer::Alias(net, id));
        }

        // Dependency-filtered, compiled inputs per cell output port,
        // bound by interned slot id.
        let deps: Vec<_> = design
            .cells
            .iter()
            .map(|c| c.model.output_dependencies())
            .collect();
        let compile_inputs = |cell: &FlatCell,
                              model: &CompiledModel,
                              needed: Option<&std::collections::BTreeSet<String>>,
                              nets: &mut NetTable|
         -> Vec<(PortId, CompiledSignal)> {
            cell.inputs
                .iter()
                .filter(|(in_port, _)| needed.is_none_or(|set| set.contains(*in_port)))
                .filter_map(|(in_port, sig)| {
                    // Bindings for names the model has no slot for would
                    // never be read; dropping them mirrors an env entry
                    // no expression looks up.
                    model
                        .port_id(in_port)
                        .map(|slot| (slot, CompiledSignal::compile(sig, nets)))
                })
                .collect()
        };

        let mut g = Digraph::new(producers.len());
        let mut producers_compiled: Vec<Option<Producer>> = Vec::with_capacity(producers.len());
        let mut reads = Vec::new();
        for (idx, p) in producers.iter().enumerate() {
            match p {
                RawProducer::CellPort(i, port, net_id) => {
                    let cell = &design.cells[*i];
                    if cell.model.is_registered_output(port) {
                        // State cuts the dependency; published pre-pass.
                        producers_compiled.push(None);
                        continue;
                    }
                    let model = &compiled[*i];
                    let needed = deps[*i].get(*port);
                    let inputs = compile_inputs(cell, model, needed, &mut nets);
                    for (_, sig) in &inputs {
                        reads.clear();
                        sig.net_reads(&mut reads);
                        for &r in &reads {
                            if let Some(Some(from)) = net_producer.get(r as usize) {
                                g.add_edge(*from, idx, 0.0);
                            }
                        }
                    }
                    let out_slot = model.port_id(port).ok_or_else(|| {
                        SimError::Eval(format!("{} has no port {port}", cell.path))
                    })?;
                    let mut targets = vec![false; model.slots()];
                    targets[out_slot as usize] = true;
                    producers_compiled.push(Some(Producer::CellPort {
                        cell: *i,
                        port: port.to_string(),
                        out_slot,
                        net: *net_id,
                        inputs,
                        targets,
                    }));
                }
                RawProducer::Alias(net, net_id) => {
                    let sig = CompiledSignal::compile(&design.aliases[*net], &mut nets);
                    reads.clear();
                    sig.net_reads(&mut reads);
                    for &r in &reads {
                        if let Some(Some(from)) = net_producer.get(r as usize) {
                            g.add_edge(*from, idx, 0.0);
                        }
                    }
                    producers_compiled.push(Some(Producer::Alias { net: *net_id, sig }));
                }
            }
        }
        let order_ids = g.topo_sort().map_err(|e| {
            let name = match &producers[e.node] {
                RawProducer::CellPort(i, port, _) => {
                    format!("{}.{port}", design.cells[*i].path)
                }
                RawProducer::Alias(n, _) => n.to_string(),
            };
            SimError::CombinationalCycle(name)
        })?;
        let mut slots: Vec<Option<Producer>> = producers_compiled;
        let order: Vec<Producer> = order_ids
            .into_iter()
            .filter_map(|i| slots[i].take())
            .collect();

        // Registered outputs published from state before each pass.
        let mut reg_publish = Vec::new();
        let mut seq_inputs: Vec<Option<Vec<(PortId, CompiledSignal)>>> =
            Vec::with_capacity(design.cells.len());
        for (i, cell) in design.cells.iter().enumerate() {
            if cell.model.is_sequential() {
                for (port, net) in &cell.outputs {
                    if cell.model.is_registered_output(port) {
                        let id = nets.intern(net);
                        let slot = compiled[i].port_id(port).ok_or_else(|| {
                            SimError::Eval(format!("{} has no port {port}", cell.path))
                        })?;
                        reg_publish.push((i, slot, id, port_width(cell, port)));
                    }
                }
                seq_inputs.push(Some(compile_inputs(cell, &compiled[i], None, &mut nets)));
            } else {
                seq_inputs.push(None);
            }
        }

        let outputs = design
            .outputs
            .iter()
            .map(|(name, sig)| (name.clone(), CompiledSignal::compile(sig, &mut nets)))
            .collect();

        let state = compiled.iter().map(|m| zero_state(m)).collect();
        let scratch = RefCell::new(vec![None; nets.names.len()]);
        let cell_scratch = RefCell::new(
            compiled
                .iter()
                .map(|m| vec![None; m.slots()])
                .collect::<Vec<_>>(),
        );
        Ok(Simulator {
            design,
            net_names: nets.names,
            compiled,
            order,
            reg_publish,
            seq_inputs,
            outputs,
            state,
            scratch,
            cell_scratch,
        })
    }

    /// Resets all sequential state to zero.
    pub fn reset(&mut self) {
        self.state = self.compiled.iter().map(|m| zero_state(m)).collect();
    }

    /// A cell's current state as a port-name env (testing hook).
    pub fn cell_state(&self, path: &str) -> Option<Env> {
        let i = self.design.cells.iter().position(|c| c.path == path)?;
        let model = &self.compiled[i];
        let mut env = Env::new();
        for &(slot, _) in model.outputs() {
            if let Some(v) = &self.state[i][slot as usize] {
                env.insert(model.name(slot).to_string(), v.clone());
            }
        }
        Some(env)
    }

    fn pass(
        &self,
        inputs: &Env,
        nets: &mut [Option<Bits>],
    ) -> Result<Vec<Option<Vec<Option<Bits>>>>, SimError> {
        for slot in nets.iter_mut() {
            *slot = None;
        }
        let names = &self.net_names;
        let mut cell_scratch = self.cell_scratch.borrow_mut();
        let mut pending: Vec<Option<Vec<Option<Bits>>>> = vec![None; self.design.cells.len()];
        // Publish registered outputs first (they are sources); a
        // sequential cell's combinational read ports are evaluated in
        // topological order like any other producer.
        for (i, slot, net, width) in &self.reg_publish {
            let v = self.state[*i][*slot as usize]
                .clone()
                .unwrap_or_else(|| Bits::zero(*width));
            nets[*net as usize] = Some(v);
        }
        for producer in &self.order {
            match producer {
                Producer::CellPort {
                    cell: i,
                    port,
                    out_slot,
                    net,
                    inputs: cell_inputs,
                    targets,
                } => {
                    let cell = &self.design.cells[*i];
                    let model = &self.compiled[*i];
                    // Evaluate just this output, using only the inputs it
                    // depends on (others may not be resolved yet).
                    let values = &mut cell_scratch[*i];
                    values.fill(None);
                    if cell.model.is_sequential() {
                        // Combinational reads see the current state.
                        for &(slot, _) in model.outputs() {
                            values[slot as usize] = self.state[*i][slot as usize].clone();
                        }
                    }
                    for (slot, sig) in cell_inputs {
                        let v = sig.eval(nets, names, inputs).map_err(SimError::Eval)?;
                        values[*slot as usize] = Some(v);
                    }
                    model
                        .eval_into(values, Some(targets))
                        .map_err(|e| SimError::Eval(format!("{}: {e}", cell.path)))?;
                    let v = values[*out_slot as usize].clone().ok_or_else(|| {
                        SimError::Eval(format!("{} missing output {port}", cell.path))
                    })?;
                    nets[*net as usize] = Some(v);
                }
                Producer::Alias { net, sig } => {
                    let v = sig.eval(nets, names, inputs).map_err(SimError::Eval)?;
                    nets[*net as usize] = Some(v);
                }
            }
        }
        // Next states for sequential cells, now that all nets are known.
        for (i, cell) in self.design.cells.iter().enumerate() {
            let Some(cell_inputs) = &self.seq_inputs[i] else {
                continue;
            };
            let model = &self.compiled[i];
            let values = &mut cell_scratch[i];
            values.clone_from(&self.state[i]);
            for (slot, sig) in cell_inputs {
                let v = sig.eval(nets, names, inputs).map_err(SimError::Eval)?;
                values[*slot as usize] = Some(v);
            }
            model
                .eval_into(values, None)
                .map_err(|e| SimError::Eval(format!("{}: {e}", cell.path)))?;
            // Keep only the output slots (the next state); input-slot
            // values would be masked off at commit anyway, so don't
            // clone them.
            let mut next = vec![None; values.len()];
            for &(slot, _) in model.outputs() {
                next[slot as usize] = values[slot as usize].clone();
            }
            pending[i] = Some(next);
        }
        Ok(pending)
    }

    /// Evaluates the combinational function without advancing state;
    /// returns the primary outputs.
    ///
    /// # Errors
    ///
    /// [`SimError::Eval`] on missing nets or model failures.
    pub fn eval(&self, inputs: &Env) -> Result<Env, SimError> {
        let mut nets = self.scratch.borrow_mut();
        let _ = self.pass(inputs, &mut nets)?;
        self.primary_outputs(&nets, inputs)
    }

    /// One clock cycle: evaluates, returns the (pre-edge) primary outputs,
    /// then commits next state.
    ///
    /// # Errors
    ///
    /// [`SimError::Eval`] on missing nets or model failures.
    pub fn step(&mut self, inputs: &Env) -> Result<Env, SimError> {
        // Move the scratch out so state commits below don't fight the
        // borrow; it goes back (same allocation) before returning.
        let mut nets = std::mem::take(self.scratch.get_mut());
        let result = self.pass(inputs, &mut nets);
        let outs = result.and_then(|pending| {
            let outs = self.primary_outputs(&nets, inputs)?;
            for (i, next) in pending.into_iter().enumerate() {
                if let Some(next) = next {
                    // Already restricted to output slots by `pass`.
                    self.state[i] = next;
                }
            }
            Ok(outs)
        });
        *self.scratch.get_mut() = nets;
        outs
    }

    fn primary_outputs(&self, nets: &[Option<Bits>], inputs: &Env) -> Result<Env, SimError> {
        let mut out = Env::new();
        for (name, sig) in &self.outputs {
            let v = sig
                .eval(nets, &self.net_names, inputs)
                .map_err(SimError::Eval)?;
            out.insert(name.clone(), v);
        }
        Ok(out)
    }
}

fn port_width(cell: &FlatCell, port: &str) -> usize {
    cell.model.port(port).map(|p| p.width).unwrap_or(1)
}

/// Slot-indexed all-zeros state: `Some(zero)` at every output slot.
fn zero_state(model: &CompiledModel) -> Vec<Option<Bits>> {
    let mut state = vec![None; model.slots()];
    for &(slot, width) in model.outputs() {
        state[slot as usize] = Some(Bits::zero(width));
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::FlatDesign;
    use cells::lsi::lsi_logic_subset;
    use dtas::Dtas;
    use genus::kind::ComponentKind;
    use genus::op::{Op, OpSet};
    use genus::spec::ComponentSpec;

    fn env(pairs: &[(&str, Bits)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn simulate_ripple_adder() {
        let spec = ComponentSpec::new(ComponentKind::AddSub, 8)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let set = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        let flat = FlatDesign::from_implementation(&set.alternatives[0].implementation).unwrap();
        let sim = Simulator::new(&flat).unwrap();
        let out = sim
            .eval(&env(&[
                ("A", Bits::from_u64(8, 200)),
                ("B", Bits::from_u64(8, 100)),
                ("CI", Bits::from_u64(1, 1)),
            ]))
            .unwrap();
        assert_eq!(out["O"].to_u64(), Some((200 + 100 + 1) & 0xff));
        assert_eq!(out["CO"].to_u64(), Some(1));
    }

    #[test]
    fn simulate_synthesized_counter() {
        let spec = ComponentSpec::new(ComponentKind::Counter, 4)
            .with_ops([Op::Load, Op::CountUp, Op::CountDown].into_iter().collect())
            .with_enable(true)
            .with_style("SYNCHRONOUS");
        let set = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        let flat = FlatDesign::from_implementation(&set.alternatives[0].implementation).unwrap();
        let mut sim = Simulator::new(&flat).unwrap();
        let step = |sim: &mut Simulator, cen: u64, load: u64, up: u64, down: u64| {
            sim.step(&env(&[
                ("I0", Bits::from_u64(4, 9)),
                ("CLK", Bits::zero(1)),
                ("CEN", Bits::from_u64(1, cen)),
                ("CLOAD", Bits::from_u64(1, load)),
                ("CUP", Bits::from_u64(1, up)),
                ("CDOWN", Bits::from_u64(1, down)),
            ]))
            .unwrap()["O0"]
                .to_u64()
                .unwrap()
        };
        assert_eq!(step(&mut sim, 1, 0, 1, 0), 0); // pre-edge value
        assert_eq!(step(&mut sim, 1, 0, 1, 0), 1);
        assert_eq!(step(&mut sim, 1, 0, 1, 0), 2);
        assert_eq!(step(&mut sim, 0, 0, 1, 0), 3); // disabled: holds
        assert_eq!(step(&mut sim, 1, 1, 0, 0), 3); // load fires
        assert_eq!(step(&mut sim, 1, 0, 0, 1), 9); // count down
        assert_eq!(step(&mut sim, 1, 0, 0, 0), 8); // hold
        assert_eq!(step(&mut sim, 1, 0, 0, 0), 8);
    }
}
