//! Levelized simulation of flattened designs.
//!
//! Combinational cells evaluate in topological order; sequential cells
//! (registers and anything built on them) publish their current state at
//! the start of the pass and latch their next state when the clock
//! [`step`](Simulator::step)s.

use crate::flatten::{FlatCell, FlatDesign};
use dtas::template::Signal;
use genus::behavior::Env;
use rtl_base::bits::Bits;
use rtl_base::graph::Digraph;
use std::collections::BTreeMap;
use std::fmt;

/// Simulation error.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The combinational logic is cyclic.
    CombinationalCycle(String),
    /// A signal or model evaluation failed (missing net, width clash).
    Eval(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through {n}")
            }
            SimError::Eval(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

enum Producer {
    /// One output port of one cell (port-level granularity lets legal
    /// feedback — e.g. lookahead carries returning into P/G adders —
    /// levelize).
    CellPort(usize, String),
    Alias(String),
}

/// A two-phase (evaluate, commit) simulator over a [`FlatDesign`].
///
/// State is held per sequential cell as the env of its output ports;
/// everything resets to zero.
pub struct Simulator<'a> {
    design: &'a FlatDesign,
    order: Vec<Producer>,
    /// Current state of sequential cells, indexed like `design.cells`.
    state: Vec<Env>,
    /// Cached output→input dependency maps, indexed like `design.cells`.
    deps: Vec<BTreeMap<String, std::collections::BTreeSet<String>>>,
}

fn signal_leaf_nets(sig: &Signal) -> Vec<String> {
    sig.leaves()
        .into_iter()
        .filter_map(|l| match l {
            Signal::Net(n) => Some(n.clone()),
            _ => None,
        })
        .collect()
}

impl<'a> Simulator<'a> {
    /// Levelizes the design.
    ///
    /// # Errors
    ///
    /// [`SimError::CombinationalCycle`] when the combinational logic is
    /// cyclic.
    pub fn new(design: &'a FlatDesign) -> Result<Self, SimError> {
        // Producer graph: one node per bound cell output port and per
        // alias.
        let mut producers: Vec<Producer> = Vec::new();
        let mut net_producer: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, cell) in design.cells.iter().enumerate() {
            for (port, net) in &cell.outputs {
                let idx = producers.len();
                producers.push(Producer::CellPort(i, port.clone()));
                net_producer.insert(net, idx);
            }
        }
        for (net, _) in design.aliases.iter() {
            let idx = producers.len();
            producers.push(Producer::Alias(net.clone()));
            net_producer.insert(net, idx);
        }
        let mut g = Digraph::new(producers.len());
        let add_deps = |to: usize, sig: &Signal, g: &mut Digraph| {
            for net in signal_leaf_nets(sig) {
                if let Some(&from) = net_producer.get(net.as_str()) {
                    g.add_edge(from, to, 0.0);
                }
            }
        };
        let deps: Vec<_> = design
            .cells
            .iter()
            .map(|c| c.model.output_dependencies())
            .collect();
        for (idx, p) in producers.iter().enumerate() {
            match p {
                Producer::CellPort(i, port) => {
                    let cell = &design.cells[*i];
                    if cell.model.is_registered_output(port) {
                        continue; // state cuts the dependency
                    }
                    let needed = deps[*i].get(port);
                    for (in_port, sig) in &cell.inputs {
                        if needed.is_none_or(|set| set.contains(in_port)) {
                            add_deps(idx, sig, &mut g);
                        }
                    }
                }
                Producer::Alias(net) => {
                    let sig = &design.aliases[net];
                    add_deps(idx, sig, &mut g);
                }
            }
        }
        let order_ids = g.topo_sort().map_err(|e| {
            let name = match &producers[e.node] {
                Producer::CellPort(i, port) => {
                    format!("{}.{port}", design.cells[*i].path)
                }
                Producer::Alias(n) => n.clone(),
            };
            SimError::CombinationalCycle(name)
        })?;
        let order = order_ids
            .into_iter()
            .map(|i| match &producers[i] {
                Producer::CellPort(c, p) => Producer::CellPort(*c, p.clone()),
                Producer::Alias(n) => Producer::Alias(n.clone()),
            })
            .collect();
        let state = design.cells.iter().map(zero_state).collect();
        Ok(Simulator {
            design,
            order,
            state,
            deps,
        })
    }

    /// Resets all sequential state to zero.
    pub fn reset(&mut self) {
        self.state = self.design.cells.iter().map(zero_state).collect();
    }

    /// Direct access to a cell's state (testing hook).
    pub fn cell_state(&self, path: &str) -> Option<&Env> {
        self.design
            .cells
            .iter()
            .position(|c| c.path == path)
            .map(|i| &self.state[i])
    }

    fn pass(&self, inputs: &Env) -> Result<(BTreeMap<String, Bits>, Vec<Option<Env>>), SimError> {
        let mut nets: Env = Env::new();
        let mut pending: Vec<Option<Env>> = vec![None; self.design.cells.len()];
        let resolve = |sig: &Signal, nets: &Env, inputs: &Env| -> Result<Bits, SimError> {
            sig.eval(nets, inputs).map_err(SimError::Eval)
        };
        // Publish registered outputs first (they are sources); a
        // sequential cell's combinational read ports are evaluated in
        // topological order like any other producer.
        for (i, cell) in self.design.cells.iter().enumerate() {
            if cell.model.is_sequential() {
                for (port, net) in &cell.outputs {
                    if !cell.model.is_registered_output(port) {
                        continue;
                    }
                    let v = self.state[i]
                        .get(port)
                        .cloned()
                        .unwrap_or_else(|| Bits::zero(port_width(cell, port)));
                    nets.insert(net.clone(), v);
                }
            }
        }
        for producer in &self.order {
            match producer {
                Producer::CellPort(i, port) => {
                    let cell = &self.design.cells[*i];
                    if cell.model.is_registered_output(port) {
                        continue; // published above
                    }
                    // Evaluate just this output, using only the inputs it
                    // depends on (others may not be resolved yet).
                    let needed = self.deps[*i].get(port);
                    let mut env = Env::new();
                    if cell.model.is_sequential() {
                        // Combinational reads see the current state.
                        for (k, v) in &self.state[*i] {
                            env.insert(k.clone(), v.clone());
                        }
                    }
                    for (in_port, sig) in &cell.inputs {
                        if needed.is_none_or(|set| set.contains(in_port)) {
                            env.insert(in_port.clone(), resolve(sig, &nets, inputs)?);
                        }
                    }
                    let targets: std::collections::BTreeSet<String> =
                        [port.clone()].into_iter().collect();
                    let out = cell
                        .model
                        .eval_filtered(&env, Some(&targets))
                        .map_err(|e| SimError::Eval(format!("{}: {e}", cell.path)))?;
                    let net = &cell.outputs[port];
                    let v = out.get(port).cloned().ok_or_else(|| {
                        SimError::Eval(format!("{} missing output {port}", cell.path))
                    })?;
                    nets.insert(net.clone(), v);
                }
                Producer::Alias(net) => {
                    let sig = &self.design.aliases[net];
                    let v = resolve(sig, &nets, inputs)?;
                    nets.insert(net.clone(), v);
                }
            }
        }
        // Next states for sequential cells, now that all nets are known.
        for (i, cell) in self.design.cells.iter().enumerate() {
            if !cell.model.is_sequential() {
                continue;
            }
            let mut env = self.state[i].clone();
            for (port, sig) in &cell.inputs {
                env.insert(port.clone(), resolve(sig, &nets, inputs)?);
            }
            let next = cell
                .model
                .eval(&env)
                .map_err(|e| SimError::Eval(format!("{}: {e}", cell.path)))?;
            pending[i] = Some(next);
        }
        Ok((nets, pending))
    }

    /// Evaluates the combinational function without advancing state;
    /// returns the primary outputs.
    ///
    /// # Errors
    ///
    /// [`SimError::Eval`] on missing nets or model failures.
    pub fn eval(&self, inputs: &Env) -> Result<Env, SimError> {
        let (nets, _) = self.pass(inputs)?;
        self.primary_outputs(&nets, inputs)
    }

    /// One clock cycle: evaluates, returns the (pre-edge) primary outputs,
    /// then commits next state.
    ///
    /// # Errors
    ///
    /// [`SimError::Eval`] on missing nets or model failures.
    pub fn step(&mut self, inputs: &Env) -> Result<Env, SimError> {
        let (nets, pending) = self.pass(inputs)?;
        let outs = self.primary_outputs(&nets, inputs)?;
        for (i, next) in pending.into_iter().enumerate() {
            if let Some(next) = next {
                // Keep only the output ports as state.
                let cell = &self.design.cells[i];
                let mut s = Env::new();
                for port in cell.model.outputs() {
                    if let Some(v) = next.get(&port.name) {
                        s.insert(port.name.clone(), v.clone());
                    }
                }
                self.state[i] = s;
            }
        }
        Ok(outs)
    }

    fn primary_outputs(&self, nets: &Env, inputs: &Env) -> Result<Env, SimError> {
        let mut out = Env::new();
        for (name, sig) in &self.design.outputs {
            let v = sig.eval(nets, inputs).map_err(SimError::Eval)?;
            out.insert(name.clone(), v);
        }
        Ok(out)
    }
}

fn port_width(cell: &FlatCell, port: &str) -> usize {
    cell.model.port(port).map(|p| p.width).unwrap_or(1)
}

fn zero_state(cell: &FlatCell) -> Env {
    cell.model
        .outputs()
        .map(|p| (p.name.clone(), Bits::zero(p.width)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::FlatDesign;
    use cells::lsi::lsi_logic_subset;
    use dtas::Dtas;
    use genus::kind::ComponentKind;
    use genus::op::{Op, OpSet};
    use genus::spec::ComponentSpec;

    fn env(pairs: &[(&str, Bits)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn simulate_ripple_adder() {
        let spec = ComponentSpec::new(ComponentKind::AddSub, 8)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let set = Dtas::new(lsi_logic_subset()).synthesize(&spec).unwrap();
        let flat = FlatDesign::from_implementation(&set.alternatives[0].implementation).unwrap();
        let sim = Simulator::new(&flat).unwrap();
        let out = sim
            .eval(&env(&[
                ("A", Bits::from_u64(8, 200)),
                ("B", Bits::from_u64(8, 100)),
                ("CI", Bits::from_u64(1, 1)),
            ]))
            .unwrap();
        assert_eq!(out["O"].to_u64(), Some((200 + 100 + 1) & 0xff));
        assert_eq!(out["CO"].to_u64(), Some(1));
    }

    #[test]
    fn simulate_synthesized_counter() {
        let spec = ComponentSpec::new(ComponentKind::Counter, 4)
            .with_ops([Op::Load, Op::CountUp, Op::CountDown].into_iter().collect())
            .with_enable(true)
            .with_style("SYNCHRONOUS");
        let set = Dtas::new(lsi_logic_subset()).synthesize(&spec).unwrap();
        let flat = FlatDesign::from_implementation(&set.alternatives[0].implementation).unwrap();
        let mut sim = Simulator::new(&flat).unwrap();
        let step = |sim: &mut Simulator, cen: u64, load: u64, up: u64, down: u64| {
            sim.step(&env(&[
                ("I0", Bits::from_u64(4, 9)),
                ("CLK", Bits::zero(1)),
                ("CEN", Bits::from_u64(1, cen)),
                ("CLOAD", Bits::from_u64(1, load)),
                ("CUP", Bits::from_u64(1, up)),
                ("CDOWN", Bits::from_u64(1, down)),
            ]))
            .unwrap()["O0"]
                .to_u64()
                .unwrap()
        };
        assert_eq!(step(&mut sim, 1, 0, 1, 0), 0); // pre-edge value
        assert_eq!(step(&mut sim, 1, 0, 1, 0), 1);
        assert_eq!(step(&mut sim, 1, 0, 1, 0), 2);
        assert_eq!(step(&mut sim, 0, 0, 1, 0), 3); // disabled: holds
        assert_eq!(step(&mut sim, 1, 1, 0, 0), 3); // load fires
        assert_eq!(step(&mut sim, 1, 0, 0, 1), 9); // count down
        assert_eq!(step(&mut sim, 1, 0, 0, 0), 8); // hold
        assert_eq!(step(&mut sim, 1, 0, 0, 0), 8);
    }
}
