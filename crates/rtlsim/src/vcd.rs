//! VCD (Value Change Dump) trace writing.
//!
//! A small IEEE-1364-style VCD emitter so simulations of synthesized
//! designs can be inspected in any waveform viewer. Traces record the
//! primary inputs and outputs of a [`FlatDesign`](crate::FlatDesign)
//! simulation cycle by cycle.

use genus::behavior::Env;
use rtl_base::bits::Bits;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A VCD trace under construction.
///
/// # Examples
///
/// ```
/// use genus::behavior::Env;
/// use rtl_base::bits::Bits;
/// use rtlsim::vcd::VcdTrace;
///
/// let mut trace = VcdTrace::new("adder_tb");
/// let mut cycle = Env::new();
/// cycle.insert("A".to_string(), Bits::from_u64(8, 200));
/// cycle.insert("O".to_string(), Bits::from_u64(8, 201));
/// trace.sample(&cycle);
/// let text = trace.render();
/// assert!(text.contains("$var wire 8 "));
/// assert!(text.contains("#0"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct VcdTrace {
    design: String,
    /// Signal name → (id char(s), width), in declaration order.
    signals: BTreeMap<String, (String, usize)>,
    /// Per-cycle sampled values.
    cycles: Vec<BTreeMap<String, Bits>>,
}

fn id_for(index: usize) -> String {
    // Printable VCD identifiers: ! through ~.
    let mut n = index;
    let mut out = String::new();
    loop {
        out.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    out
}

impl VcdTrace {
    /// Starts a trace for the named design.
    pub fn new(design: &str) -> Self {
        VcdTrace {
            design: design.to_string(),
            ..VcdTrace::default()
        }
    }

    /// Records one cycle of signal values (ports appear in the header in
    /// first-seen order; once declared, a signal's width is fixed).
    pub fn sample(&mut self, values: &Env) {
        for (name, bits) in values {
            let next_id = self.signals.len();
            self.signals
                .entry(name.clone())
                .or_insert_with(|| (id_for(next_id), bits.width()));
        }
        self.cycles
            .push(values.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
    }

    /// Number of sampled cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Renders the trace as VCD text (one timestep per sampled cycle,
    /// emitting only value changes).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$comment hls-rtl-bridge simulation trace $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.design);
        for (name, (id, width)) in &self.signals {
            let _ = writeln!(out, "$var wire {width} {id} {name} $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut last: BTreeMap<&str, &Bits> = BTreeMap::new();
        for (t, cycle) in self.cycles.iter().enumerate() {
            let _ = writeln!(out, "#{t}");
            for (name, value) in cycle {
                if last.get(name.as_str()) == Some(&value) {
                    continue;
                }
                let (id, width) = &self.signals[name];
                if *width == 1 {
                    let _ = writeln!(out, "{}{id}", if value.bit(0) { 1 } else { 0 });
                } else {
                    let _ = writeln!(out, "b{value} {id}");
                }
                last.insert(name, value);
            }
        }
        let _ = writeln!(out, "#{}", self.cycles.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::FlatDesign;
    use crate::sim::Simulator;
    use cells::lsi::lsi_logic_subset;
    use dtas::Dtas;
    use genus::kind::ComponentKind;
    use genus::op::{Op, OpSet};
    use genus::spec::ComponentSpec;

    #[test]
    fn traces_a_synthesized_counter() {
        let spec = ComponentSpec::new(ComponentKind::Counter, 4)
            .with_ops([Op::Load, Op::CountUp].into_iter().collect::<OpSet>())
            .with_enable(true)
            .with_style("SYNCHRONOUS");
        let set = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        let flat = FlatDesign::from_implementation(&set.alternatives[0].implementation).unwrap();
        let mut sim = Simulator::new(&flat).unwrap();
        let mut trace = VcdTrace::new("counter_tb");
        for cycle in 0..6u64 {
            let mut env = Env::new();
            env.insert("I0".to_string(), Bits::from_u64(4, 9));
            env.insert("CLK".to_string(), Bits::zero(1));
            env.insert("CEN".to_string(), Bits::from_u64(1, 1));
            env.insert(
                "CLOAD".to_string(),
                Bits::from_u64(1, u64::from(cycle == 0)),
            );
            env.insert("CUP".to_string(), Bits::from_u64(1, u64::from(cycle > 0)));
            let out = sim.step(&env).unwrap();
            let mut sample = env.clone();
            sample.extend(out);
            trace.sample(&sample);
        }
        let text = trace.render();
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("$scope module counter_tb"));
        // Counter loads 9 then counts: O0 changes each cycle → one change
        // record per step.
        assert!(text.matches("b1001 ").count() >= 1, "{text}");
        assert_eq!(trace.len(), 6);
    }

    #[test]
    fn ids_are_printable_and_unique() {
        let ids: Vec<String> = (0..200).map(id_for).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        for id in ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }

    #[test]
    fn only_changes_are_emitted() {
        let mut trace = VcdTrace::new("t");
        for v in [1u64, 1, 0, 0, 1] {
            let mut env = Env::new();
            env.insert("x".to_string(), Bits::from_u64(1, v));
            trace.sample(&env);
        }
        let text = trace.render();
        // Changes at t0 (1), t2 (0), t4 (1): three emissions.
        let count = text.lines().filter(|l| l.ends_with('!')).count();
        assert_eq!(count, 3, "{text}");
    }
}
