//! Equivalence checking between behavioral models and synthesized
//! implementations.
//!
//! The golden reference is always the generic component model built from
//! the implemented specification; the device under test is the flattened
//! leaf-cell netlist. Inputs are sampled so that operation selects stay
//! in range (out-of-range select codes are don't-cares on both sides, as
//! in real data books).

use crate::flatten::FlatDesign;
use crate::sim::{SimError, Simulator};
use dtas::Implementation;
use genus::behavior::Env;
use genus::build::component_for_spec;
use genus::component::{Component, PortClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtl_base::bits::Bits;
use std::fmt;

/// A counterexample found by equivalence checking.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Offending output port.
    pub port: String,
    /// Inputs that expose the difference.
    pub inputs: Env,
    /// Golden (behavioral) value.
    pub expected: Bits,
    /// Implementation value.
    pub actual: Bits,
    /// Clock cycle at which the mismatch appeared (0 for combinational).
    pub cycle: usize,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "output {} differs at cycle {}: expected {}, got {}",
            self.port, self.cycle, self.expected, self.actual
        )?;
        for (k, v) in &self.inputs {
            writeln!(f, "  {k} = {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Mismatch {}

/// Equivalence-checking failure: either a simulator defect or a real
/// counterexample.
#[derive(Debug)]
pub enum EquivError {
    /// The implementation failed to flatten or simulate.
    Sim(String),
    /// A counterexample.
    Mismatch(Box<Mismatch>),
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::Sim(m) => write!(f, "simulation failed: {m}"),
            EquivError::Mismatch(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EquivError {}

impl From<SimError> for EquivError {
    fn from(e: SimError) -> Self {
        EquivError::Sim(e.to_string())
    }
}

/// Upper bound (exclusive) on meaningful values for an input port, used
/// to keep sampled vectors inside the component's defined behavior.
fn valid_bound(model: &Component, port_name: &str) -> Option<u64> {
    let port = model.port(port_name)?;
    match port.class {
        PortClass::Select => {
            if let Some(sel) = model.op_select() {
                if sel.port == port_name {
                    return Some(sel.encoding.len() as u64);
                }
            }
            // Mux/selector-style select: bound by the fan-in.
            let n = model.spec().inputs;
            if n > 0 {
                Some(n as u64)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Draws a random, in-range input environment for a component model.
pub fn random_inputs(model: &Component, rng: &mut StdRng) -> Env {
    let mut env = Env::new();
    for port in model.inputs() {
        if port.class == PortClass::Clock {
            env.insert(port.name.clone(), Bits::zero(port.width));
            continue;
        }
        let value = match valid_bound(model, &port.name) {
            Some(bound) if bound > 0 => Bits::from_u64(port.width, rng.gen_range(0..bound)),
            _ => Bits::from_fn(port.width, |_| rng.gen_bool(0.5)),
        };
        env.insert(port.name.clone(), value);
    }
    env
}

/// Golden single-component reference simulator: keeps sequential state by
/// re-binding output values into the next evaluation.
struct Golden {
    model: Component,
    state: Env,
}

impl Golden {
    fn new(model: Component) -> Self {
        let state = model
            .outputs()
            .map(|p| (p.name.clone(), Bits::zero(p.width)))
            .collect();
        Golden { model, state }
    }

    /// Pre-edge outputs for these inputs, then advance state.
    ///
    /// Registered outputs (written by clocked, controlled operations —
    /// a register's `Q`, a counter's `O0`, a memory's `MEM`) publish the
    /// *current* state; combinational read ports (written by
    /// unconditional operations — a register file's `RD`, a stack's
    /// `EMPTY`) are Mealy outputs recomputed from current inputs and
    /// state.
    fn step(&mut self, inputs: &Env) -> Result<Env, EquivError> {
        let mut env = inputs.clone();
        for (k, v) in &self.state {
            env.insert(k.clone(), v.clone());
        }
        let next = self
            .model
            .eval(&env)
            .map_err(|e| EquivError::Sim(e.to_string()))?;
        if !self.model.is_sequential() {
            return Ok(next);
        }
        let mut now = self.state.clone();
        let mealy: std::collections::BTreeSet<String> = self
            .model
            .outputs()
            .filter(|p| !self.model.is_registered_output(&p.name))
            .map(|p| p.name.clone())
            .collect();
        if !mealy.is_empty() {
            let comb = self
                .model
                .eval_filtered(&env, Some(&mealy))
                .map_err(|e| EquivError::Sim(e.to_string()))?;
            for target in &mealy {
                if let Some(v) = comb.get(target) {
                    now.insert(target.clone(), v.clone());
                }
            }
        }
        self.state = next;
        Ok(now)
    }
}

/// Checks an implementation against the behavioral model of its
/// specification on `vectors` random vectors (combinational) or clock
/// cycles (sequential).
///
/// # Errors
///
/// [`EquivError::Mismatch`] with a counterexample on the first
/// disagreement, [`EquivError::Sim`] on harness failures.
pub fn check_implementation(
    implementation: &Implementation,
    vectors: usize,
    seed: u64,
) -> Result<(), EquivError> {
    let golden_model =
        component_for_spec(&implementation.spec).map_err(|e| EquivError::Sim(e.to_string()))?;
    let flat = FlatDesign::from_implementation(implementation)
        .map_err(|e| EquivError::Sim(e.to_string()))?;
    let mut sim = Simulator::new(&flat)?;
    let mut golden = Golden::new(golden_model.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let sequential = golden_model.is_sequential();
    for cycle in 0..vectors {
        let inputs = random_inputs(&golden_model, &mut rng);
        let expected = golden.step(&inputs)?;
        let actual = if sequential {
            sim.step(&inputs)?
        } else {
            sim.eval(&inputs)?
        };
        for (port, exp) in &expected {
            // Only externally visible outputs are compared; the golden
            // env contains exactly the output ports.
            let Some(act) = actual.get(port) else {
                return Err(EquivError::Sim(format!(
                    "implementation lacks output {port}"
                )));
            };
            if act != exp {
                return Err(EquivError::Mismatch(Box::new(Mismatch {
                    port: port.clone(),
                    inputs,
                    expected: exp.clone(),
                    actual: act.clone(),
                    cycle,
                })));
            }
        }
    }
    Ok(())
}

/// Exhaustively checks a small combinational implementation over every
/// input combination (only sensible when the total input width is small).
///
/// # Errors
///
/// Like [`check_implementation`]; additionally fails when the exhaustive
/// space exceeds `2^20` vectors.
pub fn check_exhaustive(implementation: &Implementation) -> Result<(), EquivError> {
    let golden_model =
        component_for_spec(&implementation.spec).map_err(|e| EquivError::Sim(e.to_string()))?;
    if golden_model.is_sequential() {
        return Err(EquivError::Sim(
            "exhaustive checking is combinational-only".to_string(),
        ));
    }
    let ports: Vec<_> = golden_model
        .inputs()
        .map(|p| (p.name.clone(), p.width))
        .collect();
    let total: usize = ports.iter().map(|(_, w)| w).sum();
    if total > 20 {
        return Err(EquivError::Sim(format!(
            "{total} input bits is too many for exhaustive checking"
        )));
    }
    let flat = FlatDesign::from_implementation(implementation)
        .map_err(|e| EquivError::Sim(e.to_string()))?;
    let sim = Simulator::new(&flat)?;
    for code in 0u64..(1u64 << total) {
        let mut inputs = Env::new();
        let mut at = 0usize;
        for (name, w) in &ports {
            inputs.insert(name.clone(), Bits::from_u64(*w, code >> at));
            at += w;
        }
        // Skip vectors with out-of-range selects (don't-cares).
        if let Some(sel) = golden_model.op_select() {
            let v = inputs[&sel.port].to_u64().unwrap_or(u64::MAX);
            if v >= sel.encoding.len() as u64 {
                continue;
            }
        }
        if golden_model.spec().kind == genus::kind::ComponentKind::Mux {
            let v = inputs["S"].to_u64().unwrap_or(u64::MAX);
            if v >= golden_model.spec().inputs as u64 {
                continue;
            }
        }
        let expected = golden_model
            .eval(&inputs)
            .map_err(|e| EquivError::Sim(e.to_string()))?;
        let actual = sim.eval(&inputs)?;
        for (port, exp) in &expected {
            let Some(act) = actual.get(port) else {
                return Err(EquivError::Sim(format!(
                    "implementation lacks output {port}"
                )));
            };
            if act != exp {
                return Err(EquivError::Mismatch(Box::new(Mismatch {
                    port: port.clone(),
                    inputs,
                    expected: exp.clone(),
                    actual: act.clone(),
                    cycle: 0,
                })));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cells::lsi::lsi_logic_subset;
    use dtas::Dtas;
    use genus::kind::ComponentKind;
    use genus::op::{Op, OpSet};
    use genus::spec::ComponentSpec;

    fn check_all(spec: ComponentSpec, vectors: usize) {
        let set = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        assert!(!set.alternatives.is_empty());
        for alt in &set.alternatives {
            check_implementation(&alt.implementation, vectors, 0xda7a5).unwrap_or_else(|e| {
                panic!(
                    "{} implementation {} not equivalent:\n{e}\n{}",
                    spec,
                    alt.implementation.label(),
                    alt.implementation
                )
            });
        }
    }

    #[test]
    fn adders_are_equivalent() {
        for w in [2usize, 3, 5, 8, 16] {
            check_all(
                ComponentSpec::new(ComponentKind::AddSub, w)
                    .with_ops(OpSet::only(Op::Add))
                    .with_carry_in(true)
                    .with_carry_out(true),
                100,
            );
        }
    }

    #[test]
    fn addsub_is_equivalent() {
        check_all(
            ComponentSpec::new(ComponentKind::AddSub, 8)
                .with_ops([Op::Add, Op::Sub].into_iter().collect())
                .with_carry_in(true)
                .with_carry_out(true),
            200,
        );
    }

    #[test]
    fn exhaustive_add4_alternatives() {
        let spec = ComponentSpec::new(ComponentKind::AddSub, 4)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let set = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        for alt in &set.alternatives {
            check_exhaustive(&alt.implementation).unwrap_or_else(|e| {
                panic!("{} fails exhaustively: {e}", alt.implementation.label())
            });
        }
    }

    #[test]
    fn mux_trees_are_equivalent() {
        for (w, n) in [(8usize, 2usize), (4, 3), (8, 4), (1, 8), (4, 8)] {
            check_all(
                ComponentSpec::new(ComponentKind::Mux, w).with_inputs(n),
                150,
            );
        }
    }

    #[test]
    fn alu8_is_equivalent() {
        check_all(
            ComponentSpec::new(ComponentKind::Alu, 8)
                .with_ops(Op::paper_alu16())
                .with_carry_in(true),
            300,
        );
    }

    #[test]
    fn counter_is_equivalent() {
        check_all(
            ComponentSpec::new(ComponentKind::Counter, 4)
                .with_ops([Op::Load, Op::CountUp, Op::CountDown].into_iter().collect())
                .with_enable(true)
                .with_style("SYNCHRONOUS"),
            200,
        );
    }
}
