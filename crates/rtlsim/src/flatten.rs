//! Flattening hierarchical implementations into leaf-cell netlists.
//!
//! A DTAS [`Implementation`] is a tree of decomposition templates whose
//! leaves are library cells. Simulation (and gate-level export) wants a
//! flat view: every leaf cell with its wiring expressed over flat nets.
//! Flattening substitutes parent-port references with the signals wired to
//! them at each level, so arbitrary slicing/concatenation wiring composes.

use dtas::template::Signal;
use dtas::{ImplKind, Implementation};
use genus::build::component_for_spec;
use genus::component::{Component, PortDir};
use genus::netlist::Netlist;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One leaf cell of a flattened design.
#[derive(Clone, Debug)]
pub struct FlatCell {
    /// Hierarchical path (e.g. `grp2/slice0`).
    pub path: String,
    /// Behavioral model of the *specification* this cell implements.
    pub model: Arc<Component>,
    /// Input port → signal over flat nets / primary inputs / constants.
    pub inputs: BTreeMap<String, Signal>,
    /// Output port → flat net driven.
    pub outputs: BTreeMap<String, String>,
}

/// A flattened design: leaf cells, net aliases, and primary ports.
#[derive(Clone, Debug, Default)]
pub struct FlatDesign {
    /// Leaf cells.
    pub cells: Vec<FlatCell>,
    /// Nets defined as expressions over other nets (template outputs).
    pub aliases: BTreeMap<String, Signal>,
    /// Primary outputs: port name → signal.
    pub outputs: BTreeMap<String, Signal>,
    /// Primary inputs with widths.
    pub inputs: Vec<(String, usize)>,
}

/// Error produced while flattening.
#[derive(Clone, Debug, PartialEq)]
pub struct FlattenError(pub String);

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flatten: {}", self.0)
    }
}

impl std::error::Error for FlattenError {}

/// Rewrites a template-level signal into flat-net space: internal nets get
/// the `path` prefix; parent ports substitute to the signals bound at the
/// instantiation site.
fn substitute(
    sig: &Signal,
    path: &str,
    bindings: &BTreeMap<String, Signal>,
) -> Result<Signal, FlattenError> {
    Ok(match sig {
        Signal::Net(n) => Signal::Net(format!("{path}{n}")),
        Signal::Parent(p) => bindings
            .get(p)
            .cloned()
            .ok_or_else(|| FlattenError(format!("unbound parent port {p} at {path}")))?,
        Signal::Const(b) => Signal::Const(b.clone()),
        Signal::Slice(inner, lo, len) => {
            Signal::Slice(Box::new(substitute(inner, path, bindings)?), *lo, *len)
        }
        Signal::Cat(parts) => Signal::Cat(
            parts
                .iter()
                .map(|p| substitute(p, path, bindings))
                .collect::<Result<_, _>>()?,
        ),
        Signal::Replicate(inner, n) => {
            Signal::Replicate(Box::new(substitute(inner, path, bindings)?), *n)
        }
    })
}

fn flatten_into(
    implementation: &Implementation,
    path: &str,
    bindings: &BTreeMap<String, Signal>,
    out_bindings: &BTreeMap<String, String>,
    design: &mut FlatDesign,
) -> Result<(), FlattenError> {
    match &implementation.kind {
        ImplKind::Cell { .. } => {
            let model = Arc::new(
                component_for_spec(&implementation.spec)
                    .map_err(|e| FlattenError(e.to_string()))?,
            );
            let mut inputs = BTreeMap::new();
            for port in model.inputs() {
                let sig = bindings.get(&port.name).cloned().ok_or_else(|| {
                    FlattenError(format!("cell {path}: input {} unbound", port.name))
                })?;
                inputs.insert(port.name.clone(), sig);
            }
            design.cells.push(FlatCell {
                path: path.trim_end_matches('/').to_string(),
                model,
                inputs,
                outputs: out_bindings.clone(),
            });
        }
        ImplKind::Netlist { template, children } => {
            // Template-internal nets keep their (prefixed) names; module
            // outputs drive them.
            for (module, child) in template.modules.iter().zip(children) {
                let mut child_bindings = BTreeMap::new();
                for (port, sig) in &module.inputs {
                    child_bindings.insert(port.clone(), substitute(sig, path, bindings)?);
                }
                let child_outs: BTreeMap<String, String> = module
                    .outputs
                    .iter()
                    .map(|(port, net)| (port.clone(), format!("{path}{net}")))
                    .collect();
                flatten_into(
                    child,
                    &format!("{path}{}/", module.name),
                    &child_bindings,
                    &child_outs,
                    design,
                )?;
            }
            // The template's parent outputs alias onto the nets (or
            // primary outputs) the instantiation site expects.
            for (port, net) in out_bindings {
                let sig = template
                    .outputs
                    .get(port)
                    .ok_or_else(|| FlattenError(format!("{path}: template lacks output {port}")))?;
                design
                    .aliases
                    .insert(net.clone(), substitute(sig, path, bindings)?);
            }
        }
    }
    Ok(())
}

impl FlatDesign {
    /// Flattens a DTAS implementation. Primary ports take the names and
    /// widths of the implemented specification's component model.
    ///
    /// # Errors
    ///
    /// Returns [`FlattenError`] for malformed implementations (never
    /// produced by DTAS itself).
    pub fn from_implementation(
        implementation: &Implementation,
    ) -> Result<FlatDesign, FlattenError> {
        let model =
            component_for_spec(&implementation.spec).map_err(|e| FlattenError(e.to_string()))?;
        let mut design = FlatDesign::default();
        let mut bindings = BTreeMap::new();
        for port in model.inputs() {
            bindings.insert(port.name.clone(), Signal::parent(&port.name));
            design.inputs.push((port.name.clone(), port.width));
        }
        let out_bindings: BTreeMap<String, String> = model
            .outputs()
            .map(|p| (p.name.clone(), format!("__out_{}", p.name)))
            .collect();
        flatten_into(implementation, "", &bindings, &out_bindings, &mut design)?;
        for port in model.outputs() {
            design.outputs.insert(
                port.name.clone(),
                Signal::net(&format!("__out_{}", port.name)),
            );
        }
        Ok(design)
    }

    /// Converts a (flat) GENUS netlist into the simulator's form: each
    /// instance becomes one "cell" evaluated by its component model.
    ///
    /// # Errors
    ///
    /// Returns [`FlattenError`] when instance connections are incomplete
    /// (run [`Netlist::validate`] first for better diagnostics).
    pub fn from_netlist(netlist: &Netlist) -> Result<FlatDesign, FlattenError> {
        let mut design = FlatDesign::default();
        for net in netlist.nets() {
            if let Some(value) = &net.constant {
                design
                    .aliases
                    .insert(net.name.clone(), Signal::Const(value.clone()));
            }
        }
        for port in netlist.ports() {
            match port.dir {
                PortDir::In => {
                    let width = netlist
                        .net(&port.net)
                        .map(|n| n.width)
                        .ok_or_else(|| FlattenError(format!("port {} net missing", port.name)))?;
                    design.inputs.push((port.name.clone(), width));
                    design
                        .aliases
                        .insert(port.net.clone(), Signal::parent(&port.name));
                }
                PortDir::Out => {
                    design
                        .outputs
                        .insert(port.name.clone(), Signal::net(&port.net));
                }
            }
        }
        for inst in netlist.instances() {
            let mut inputs = BTreeMap::new();
            let mut outputs = BTreeMap::new();
            for (port_name, net) in &inst.connections {
                match inst.component.port(port_name).map(|p| p.dir) {
                    Some(PortDir::In) => {
                        inputs.insert(port_name.clone(), Signal::net(net));
                    }
                    Some(PortDir::Out) => {
                        outputs.insert(port_name.clone(), net.clone());
                    }
                    None => {
                        return Err(FlattenError(format!(
                            "{} has no port {port_name}",
                            inst.name
                        )))
                    }
                }
            }
            design.cells.push(FlatCell {
                path: inst.name.clone(),
                model: Arc::clone(&inst.component),
                inputs,
                outputs,
            });
        }
        Ok(design)
    }

    /// Number of leaf cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cells::lsi::lsi_logic_subset;
    use dtas::Dtas;
    use genus::kind::ComponentKind;
    use genus::op::{Op, OpSet};
    use genus::spec::ComponentSpec;

    #[test]
    fn flatten_add8_counts_cells() {
        let spec = ComponentSpec::new(ComponentKind::AddSub, 8)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let set = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        for alt in &set.alternatives {
            let flat = FlatDesign::from_implementation(&alt.implementation).unwrap();
            assert_eq!(flat.cell_count(), alt.implementation.cell_count());
            assert!(flat.outputs.contains_key("O"));
            assert!(flat.outputs.contains_key("CO"));
            assert_eq!(flat.inputs.len(), 3); // A, B, CI
        }
    }

    #[test]
    fn paths_are_hierarchical() {
        let spec = ComponentSpec::new(ComponentKind::AddSub, 16)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let set = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        let deep = set
            .alternatives
            .iter()
            .max_by_key(|a| a.implementation.depth())
            .unwrap();
        let flat = FlatDesign::from_implementation(&deep.implementation).unwrap();
        assert!(flat.cells.iter().any(|c| c.path.contains('/')));
    }
}
