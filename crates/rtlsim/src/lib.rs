//! Bit-accurate RTL simulation and equivalence checking.
//!
//! GENUS generators produce "simulatable behavioral models ... used to
//! verify the behavior of a synthesized design" (paper §4). This crate is
//! that verification path: it flattens a DTAS [`Implementation`] (or a
//! GENUS netlist) into a leaf-cell netlist ([`flatten::FlatDesign`]),
//! simulates it cycle-accurately ([`sim::Simulator`]), and checks it
//! equivalent to the generic component's behavioral model
//! ([`equiv`]) on random and exhaustive vectors.
//!
//! Every decomposition rule in the `dtas` crate is validated this way: a
//! template that wires a carry chain or a select tree incorrectly fails
//! equivalence immediately.
//!
//! # Examples
//!
//! Verify a synthesized 8-bit adder against its behavioral model:
//!
//! ```
//! use cells::lsi::lsi_logic_subset;
//! use dtas::Dtas;
//! use genus::kind::ComponentKind;
//! use genus::op::{Op, OpSet};
//! use genus::spec::ComponentSpec;
//! use rtlsim::equiv::check_implementation;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ComponentSpec::new(ComponentKind::AddSub, 8)
//!     .with_ops(OpSet::only(Op::Add))
//!     .with_carry_in(true)
//!     .with_carry_out(true);
//! let set = Dtas::new(lsi_logic_subset()).run(&spec)?;
//! for alt in &set.alternatives {
//!     check_implementation(&alt.implementation, 200, 7)?;
//! }
//! # Ok(())
//! # }
//! ```
//!
//! [`Implementation`]: dtas::Implementation

pub mod equiv;
pub mod flatten;
pub mod sim;
pub mod vcd;

pub use equiv::{check_implementation, Mismatch};
pub use flatten::FlatDesign;
pub use sim::Simulator;
pub use vcd::VcdTrace;
