//! The paper's Figure-3 scenario: explore the area/delay trade-off space
//! of a 64-bit, 16-function ALU against the LSI-style data book, using a
//! [`SynthRequest`] to ask for the strict Pareto curve per query instead
//! of reconfiguring the engine.
//!
//! Run with: `cargo run --release --example alu64_tradeoffs`

use cells::lsi::lsi_logic_subset;
use dtas::{Dtas, FilterPolicy, SynthRequest};
use genus::kind::ComponentKind;
use genus::op::Op;
use genus::spec::ComponentSpec;
use hls_rtl_bridge::BridgeError;

fn main() -> Result<(), BridgeError> {
    let spec = ComponentSpec::new(ComponentKind::Alu, 64)
        .with_ops(Op::paper_alu16())
        .with_carry_in(true);
    println!("Component Specification: {spec}");
    println!(":OPERATIONS ({})", spec.ops);

    // Strict Pareto — the curve plotted in Figure 3 — as a per-query
    // override; the engine keeps its default configuration (and cache).
    let engine = Dtas::new(lsi_logic_subset());
    let request = SynthRequest::new(spec).with_root_filter(FilterPolicy::Pareto);
    let designs = engine.run(&request)?;
    println!("\n{designs}");

    // An ASCII rendition of the Figure-3 scatter: delay (y) over area (x).
    println!("{}", designs.ascii_plot());
    let front = &designs.alternatives;
    let d_max = front.first().map(|a| a.delay).unwrap_or(1.0);
    println!(
        "worst-to-best delay: {:.1} ns -> {:.1} ns ({:.1}x)",
        d_max,
        front.last().map(|a| a.delay).unwrap_or(0.0),
        d_max / front.last().map(|a| a.delay).unwrap_or(1.0),
    );
    println!(
        "synthesis took {:?} (paper: under 15 minutes on a SUN-3)",
        designs.stats.elapsed
    );
    Ok(())
}
