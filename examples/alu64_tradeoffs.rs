//! The paper's Figure-3 scenario: explore the area/delay trade-off space
//! of a 64-bit, 16-function ALU against the LSI-style data book.
//!
//! Run with: `cargo run --release --example alu64_tradeoffs`

use cells::lsi::lsi_logic_subset;
use dtas::{Dtas, DtasConfig, FilterPolicy};
use genus::kind::ComponentKind;
use genus::op::Op;
use genus::spec::ComponentSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ComponentSpec::new(ComponentKind::Alu, 64)
        .with_ops(Op::paper_alu16())
        .with_carry_in(true);
    println!("Component Specification: {spec}");
    println!(":OPERATIONS ({})", spec.ops);

    // Strict Pareto — the curve plotted in Figure 3.
    let engine = Dtas::new(lsi_logic_subset()).with_config(DtasConfig {
        root_filter: FilterPolicy::Pareto,
        ..DtasConfig::default()
    });
    let designs = engine.synthesize(&spec)?;
    println!("\n{designs}");

    // An ASCII rendition of the Figure-3 scatter: delay (y) over area (x).
    println!("{}", designs.ascii_plot());
    let front = &designs.alternatives;
    let d_max = front.first().map(|a| a.delay).unwrap_or(1.0);
    println!(
        "worst-to-best delay: {:.1} ns -> {:.1} ns ({:.1}x)",
        d_max,
        front.last().map(|a| a.delay).unwrap_or(0.0),
        d_max / front.last().map(|a| a.delay).unwrap_or(1.0),
    );
    println!(
        "synthesis took {:?} (paper: under 15 minutes on a SUN-3)",
        designs.stats.elapsed
    );
    Ok(())
}
