//! The paper's Figure-2 scenario through the [`Flow`] façade: parse and
//! lower the LEGEND counter description, synthesize the sample component
//! with DTAS, and clock the mapped netlist.
//!
//! Run with: `cargo run --example counter_from_legend`

use cells::lsi::lsi_logic_subset;
use dtas::Dtas;
use genus::behavior::Env;
use genus::spec::ComponentSpec;
use hls_rtl_bridge::{BridgeError, Flow};
use legend::figure2::FIGURE2;
use rtl_base::bits::Bits;
use rtlsim::{FlatDesign, Simulator};

fn main() -> Result<(), BridgeError> {
    // 1. Parse and lower the paper's Figure-2 LEGEND description.
    let flow = Flow::from_legend(FIGURE2)?;
    let counter = flow.generator();
    println!(
        "lowered LEGEND generator {} -> sample component {} [{}]",
        counter.generator.name(),
        counter.sample.name(),
        counter.sample.spec()
    );

    // 2. Map the sample counter onto the data book with DTAS. The LSI
    //    subset has no asynchronous-set/reset flip-flops, so synthesize
    //    the synchronous variant of the spec.
    let spec = ComponentSpec {
        async_set_reset: false,
        ..flow.sample_spec().clone()
    };
    let designs = flow.map_spec(&Dtas::new(lsi_logic_subset()), spec)?;
    println!("\n{designs}");
    let chosen = designs.smallest().expect("nonempty");
    println!("chosen implementation:\n{}", chosen.implementation);

    // 3. Clock the mapped netlist: load 5, count up twice, down once.
    let flat = FlatDesign::from_implementation(&chosen.implementation)?;
    let mut sim = Simulator::new(&flat)?;
    let mut drive = |load: u64, up: u64, down: u64| -> u64 {
        let env = Env::from([
            ("I0".to_string(), Bits::from_u64(3, 5)),
            ("CLK".to_string(), Bits::zero(1)),
            ("CEN".to_string(), Bits::from_u64(1, 1)),
            ("CLOAD".to_string(), Bits::from_u64(1, load)),
            ("CUP".to_string(), Bits::from_u64(1, up)),
            ("CDOWN".to_string(), Bits::from_u64(1, down)),
        ]);
        sim.step(&env).expect("steps")["O0"].to_u64().expect("fits")
    };
    let trace = vec![
        drive(1, 0, 0), // load 5 (pre-edge output still 0)
        drive(0, 1, 0), // count up
        drive(0, 1, 0), // count up
        drive(0, 0, 1), // count down
        drive(0, 0, 0), // hold
    ];
    println!("\nclocked trace of O0: {trace:?}");
    assert_eq!(trace, vec![0, 5, 6, 7, 6]);
    println!("matches the LEGEND operations (LOAD, COUNT_UP, COUNT_DOWN)");
    Ok(())
}
