//! Quickstart: synthesize a generic 16-bit adder onto the LSI-style data
//! book and inspect the alternatives DTAS returns.
//!
//! Run with: `cargo run --example quickstart`

use cells::lsi::lsi_logic_subset;
use dtas::Dtas;
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use hls_rtl_bridge::BridgeError;
use rtlsim::equiv::check_implementation;

fn main() -> Result<(), BridgeError> {
    // 1. The technology: a 30-cell RTL data book (muxes, adders, a
    //    carry-lookahead generator, flip-flops, registers, SSI gates).
    let library = lsi_logic_subset();
    println!("target library: {} cells", library.len());

    // 2. The requirement: a generic 16-bit adder with carry-in/out —
    //    exactly the §5 example of the paper.
    let spec = ComponentSpec::new(ComponentKind::AddSub, 16)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true);
    println!("component specification: {spec}\n");

    // 3. Functional decomposition + technology mapping.
    let engine = Dtas::new(library);
    let designs = engine.run(&spec)?;
    println!("{designs}");

    // 4. Every alternative is a hierarchical netlist whose leaves are
    //    data book cells; print the fastest one and verify it against the
    //    behavioral model.
    let fastest = designs.fastest().expect("nonempty design set");
    println!("fastest implementation tree:\n{}", fastest.implementation);
    println!("cells used: {:?}", fastest.implementation.cell_census());
    check_implementation(&fastest.implementation, 500, 1)?;
    println!("bit-exact against the GENUS behavioral model on 500 random vectors");

    // 5. Export to structural VHDL for downstream tools.
    let text = vhdl::emit_implementation(&fastest.implementation).map_err(BridgeError::Emit)?;
    println!(
        "\nstructural VHDL ({} lines); first entity:",
        text.lines().count()
    );
    for line in text.lines().take(12) {
        println!("  {line}");
    }
    Ok(())
}
