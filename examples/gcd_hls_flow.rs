//! The full Figure-1 flow through the [`Flow`] façade: behavioral GCD →
//! high-level synthesis → control compilation → linking → simulation →
//! DTAS technology mapping → structural VHDL.
//!
//! Run with: `cargo run --example gcd_hls_flow`

use cells::lsi::lsi_logic_subset;
use genus::behavior::Env;
use hls_rtl_bridge::{BridgeError, Flow};
use rtl_base::bits::Bits;

/// The behavioral source, shared with `dtas lint --hls examples/gcd.ent`
/// and the CLI docs.
const GCD: &str = include_str!("gcd.ent");

fn main() -> Result<(), BridgeError> {
    let linked = Flow::from_hls(GCD)?.schedule()?.compile_control()?.link()?;
    let inputs = Env::from([
        ("clk".to_string(), Bits::zero(1)),
        ("a_in".to_string(), Bits::from_u64(8, 48)),
        ("b_in".to_string(), Bits::from_u64(8, 36)),
    ]);
    let run = linked.simulate(&inputs, |out| out["done"].to_u64() == Some(1), 1000)?;
    let result = run.outputs["r"].to_u64().expect("fits");
    println!(
        "simulated synthesized hardware: gcd(48, 36) = {result} in {} cycles",
        run.cycles
    );
    assert_eq!(result, 12);
    let mapped = linked.map(&dtas::Dtas::new(lsi_logic_subset()))?;
    println!(
        "\nDTAS mapping of the design's distinct components:\n{}",
        mapped.report()
    );
    println!(
        "structural VHDL: {} lines (vhdl::emit_netlist)",
        mapped.emit_vhdl().lines().count()
    );
    Ok(())
}
