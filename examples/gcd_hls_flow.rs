//! The full Figure-1 flow: behavioral GCD → high-level synthesis (state
//! scheduling, allocation, binding) → GENUS netlist + state sequencing
//! table → control compiler → closed netlist → simulation, plus DTAS
//! technology mapping of the datapath components.
//!
//! Run with: `cargo run --example gcd_hls_flow`

use cells::lsi::lsi_logic_subset;
use controlc::{compile_controller, link};
use dtas::Dtas;
use genus::behavior::Env;
use hls::compile::{compile, Constraints};
use hls::lang::parse_entity;
use rtl_base::bits::Bits;
use rtlsim::{FlatDesign, Simulator};

const GCD: &str = "
entity gcd(a_in: in 8, b_in: in 8, r: out 8, done: out 1) {
    var a: 8;
    var b: 8;
    a = a_in;
    b = b_in;
    while (a != b) {
        if (a > b) { a = a - b; } else { b = b - a; }
    }
    r = a;
    done = 1;
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. High-level synthesis.
    let entity = parse_entity(GCD)?;
    let design = compile(&entity, &Constraints::default())?;
    println!("{}", design.report());
    println!("state sequencing table:\n{}", design.state_table);

    // 2. Control compilation (Quine-McCluskey minimized sequencing logic).
    let controller = compile_controller(&design.state_table)?;
    println!(
        "controller: {} states, {} state bits, {} cubes, {} literals",
        controller.stats.states,
        controller.stats.state_bits,
        controller.stats.cubes,
        controller.stats.literals
    );

    // 3. Link and simulate the closed machine, tracing a waveform.
    let closed = link(&design, &controller)?;
    let flat = FlatDesign::from_netlist(&closed)?;
    let mut sim = Simulator::new(&flat)?;
    let inputs = Env::from([
        ("clk".to_string(), Bits::zero(1)),
        ("a_in".to_string(), Bits::from_u64(8, 48)),
        ("b_in".to_string(), Bits::from_u64(8, 36)),
    ]);
    let mut trace = rtlsim::VcdTrace::new("gcd_tb");
    let mut cycles = 0;
    let result = loop {
        cycles += 1;
        let out = sim.step(&inputs)?;
        let mut sample = inputs.clone();
        sample.extend(out.clone());
        trace.sample(&sample);
        if out["done"].to_u64() == Some(1) {
            break out["r"].to_u64().expect("fits");
        }
        assert!(cycles < 1000, "did not converge");
    };
    println!("\nsimulated synthesized hardware: gcd(48, 36) = {result} in {cycles} cycles");
    assert_eq!(result, 12);
    let vcd_path = std::env::temp_dir().join("gcd_tb.vcd");
    std::fs::write(&vcd_path, trace.render())?;
    println!("waveform written to {}", vcd_path.display());

    // 4. Technology-map every distinct datapath component with DTAS.
    let engine = Dtas::new(lsi_logic_subset());
    println!("\nDTAS mapping of the datapath's distinct components:");
    let mut total_area = 0.0;
    for (spec_text, set) in engine.synthesize_netlist(&design.netlist)? {
        let best = set.smallest().expect("nonempty");
        let count = design
            .netlist
            .spec_census()
            .get(&spec_text)
            .map(|(_, n)| *n)
            .unwrap_or(1);
        println!(
            "  {count} x {spec_text:<40} -> {:>6.1} gates {:>5.1} ns ({} alternatives)",
            best.area,
            best.delay,
            set.alternatives.len()
        );
        total_area += best.area * count as f64;
    }
    println!("smallest-design datapath area: {total_area:.0} equivalent NAND gates");

    // 5. Emit the structural VHDL the paper's flow hands downstream.
    let text = vhdl::emit_netlist(&design.netlist);
    println!(
        "\nstructural VHDL of the GENUS netlist: {} lines (see vhdl::emit_netlist)",
        text.lines().count()
    );
    Ok(())
}
