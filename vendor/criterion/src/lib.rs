//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no network access, so this workspace vendors
//! the slice of the criterion 0.5 API its benches use: [`Criterion`]
//! with [`Criterion::bench_function`] and [`Criterion::benchmark_group`],
//! groups with `sample_size` / `bench_with_input` / `finish`, plus the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples of an adaptively chosen
//! batch, and prints min / mean / max per-iteration wall-clock time.
//! There are no plots, no outlier analysis, and no saved baselines —
//! it exists so `cargo bench` compiles and produces honest numbers
//! offline. Set `CRITERION_SAMPLE_SIZE` to override sample counts
//! globally (CI uses `1` as a smoke value).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs a single benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark named `{group}/{id}`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark named `{group}/{id}`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark identifier.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an identifier from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting the samples this harness reports.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, and pick a batch size so one sample is >= ~1ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1))
            .clamp(1, 1_000_000) as usize;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(sample_size)
        .max(1);
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id}: no samples (bencher.iter was never called)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        bencher.samples.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("f", 16).to_string(), "f/16");
    }
}
