//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no network access, so this workspace vendors
//! the tiny slice of the `rand` 0.8 API it actually uses: a seedable
//! [`rngs::StdRng`] plus [`Rng::gen_range`] / [`Rng::gen_bool`] /
//! [`Rng::gen`]. The generator is xoshiro256** seeded via splitmix64 —
//! deterministic across platforms, which the equivalence-checking tests
//! rely on.
//!
//! This is NOT a cryptographic RNG and makes no statistical-quality
//! claims beyond "good enough to drive test vectors".

use std::ops::Range;

/// Core RNG abstraction: a source of `u64`s plus derived conveniences.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value over `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 random mantissa bits, as the real implementation does.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    /// Returns a random value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

/// Seeding abstraction mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Draws a uniform sample from `range` (half-open).
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Debiased multiply-shift would be overkill for test
                // vectors; plain modulo keeps the stub obviously correct.
                let r = ((rng.next_u64() as u128) % span) as $t;
                range.start.wrapping_add(r)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (range.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_uniform_int_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard {
    /// Draws one standard-distributed value.
    fn standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn standard<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// The distribution subset the workspace samples from (mirroring the
/// `rand::distributions` API shape).
pub mod distributions {
    use super::Rng;

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    /// The exponential distribution `Exp(λ)` — inter-arrival times of a
    /// Poisson process with rate `λ` events per unit time. Sampled by
    /// inversion (`-ln(1-U)/λ`), which is exact and needs no rejection
    /// loop. Used by `dtas bench-load --arrival-rate` for open-loop
    /// traffic generation.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Exp {
        lambda: f64,
    }

    impl Exp {
        /// A new exponential distribution with rate `lambda`.
        ///
        /// # Panics
        ///
        /// Panics unless `lambda` is finite and positive.
        pub fn new(lambda: f64) -> Exp {
            assert!(
                lambda.is_finite() && lambda > 0.0,
                "Exp::new: rate {lambda} must be finite and positive"
            );
            Exp { lambda }
        }
    }

    impl Distribution<f64> for Exp {
        fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1); `1 - u` keeps ln away
            // from zero so the sample is always finite.
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            -(1.0 - u).ln() / self.lambda
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..13);
            assert!(v < 13);
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn exp_samples_have_the_right_scale() {
        use super::distributions::{Distribution, Exp};
        let mut rng = StdRng::seed_from_u64(11);
        let exp = Exp::new(4.0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        // E[Exp(4)] = 0.25; a 20k-sample mean lands well within 10%.
        assert!((mean - 0.25).abs() < 0.025, "mean {mean}");
        assert!((0..1000).all(|_| exp.sample(&mut rng) >= 0.0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        // p = 0.5 should produce both outcomes quickly.
        let trues = (0..100).filter(|_| rng.gen_bool(0.5)).count();
        assert!(trues > 10 && trues < 90);
    }
}
