//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container has no network access, so this workspace vendors
//! the subset of the proptest 1.x API its property tests actually use:
//!
//! * [`strategy::Strategy`] with [`prop_map`](strategy::Strategy::prop_map)
//!   and [`boxed`](strategy::Strategy::boxed), implemented for integer
//!   ranges and tuples;
//! * [`arbitrary::any`] for the primitive types;
//! * [`collection::vec`] with `usize` / range size specifications;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`]
//!   macros;
//! * a [`test_runner::Config`] honoring `cases` (and accepting
//!   `max_shrink_iters` for source compatibility).
//!
//! Differences from real proptest: failing cases are **not shrunk**
//! (every test in this workspace that tunes shrinking sets
//! `max_shrink_iters: 0` anyway), and generation is deterministic per
//! test function unless `PROPTEST_SEED` is set in the environment.
//! `PROPTEST_CASES` overrides the per-config case count, which CI uses
//! to keep property sweeps fast.

pub mod strategy {
    //! The [`Strategy`] abstraction: a composable source of random values.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A source of random test values, composable with
    /// [`prop_map`](Strategy::prop_map).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// A type-erased strategy, as returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            self.inner.new_value(rng)
        }
    }

    /// Uniform choice between alternative strategies, as built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            let ix = rng.gen_range(0..self.options.len());
            self.options[ix].new_value(rng)
        }
    }

    /// A strategy that always produces a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    if end < <$t>::MAX {
                        rng.gen_range(start..end + 1)
                    } else if start > <$t>::MIN {
                        // Dodge overflow by sampling one wider slot below.
                        rng.gen_range(start - 1..end).wrapping_add(1)
                    } else {
                        // The full domain: no uniform range fits, use raw bits.
                        rng.gen::<$t>()
                    }
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $ix:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$ix.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);
}

pub mod arbitrary {
    //! [`any`] — strategies for "any value of a primitive type".

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl<T: Standard> Arbitrary for T {
        fn arbitrary(rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn new_value(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Returns the whole-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies ([`vec()`]).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Half-open element-count range accepted by [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! The case-generation loop behind the [`proptest!`](crate::proptest)
    //! macro.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; spelled `ProptestConfig` in the prelude.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Accepted for source compatibility; this stub never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is retried, not failed.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a rejection (see [`prop_assume!`](crate::prop_assume)).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// Builds a failure (see [`prop_assert!`](crate::prop_assert)).
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    /// Per-case outcome used by the assertion macros.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn seed_for(test_name: &str) -> u64 {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse() {
                return seed;
            }
        }
        // FNV-1a over the test name: deterministic, but decorrelates
        // sibling tests that share a strategy.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs `test` on `config.cases` values drawn from `strategy`.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case (no shrinking), or when rejection
    /// via `prop_assume!` starves case generation.
    pub fn run<S, F>(config: Config, test_name: &str, strategy: S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let cases = match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(config.cases),
            Err(_) => config.cases,
        };
        let mut rng = StdRng::seed_from_u64(seed_for(test_name));
        let max_rejects = cases as u64 * 16 + 1024;
        let mut passed = 0u32;
        let mut rejected = 0u64;
        while passed < cases {
            let value = strategy.new_value(&mut rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "{test_name}: prop_assume! rejected {rejected} cases \
                         (only {passed}/{cases} passed); loosen the assumptions"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: case {passed} failed\n{msg}")
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategy = ($($strat,)+);
                $crate::test_runner::run(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                    strategy,
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), left, right
        );
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {} ({})\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), left
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_map_compose() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = prop_oneof![
            (0usize..4).prop_map(|v| v * 10),
            (100usize..104).prop_map(|v| v),
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v % 10 == 0 && v < 40 || (100..104).contains(&v), "{v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(w in 1usize..10, x in any::<u64>()) {
            prop_assert!((1..10).contains(&w));
            let _ = x;
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
